// Runtime telemetry primitives: the instrumentation the hot paths carry.
//
// Design goals, in order:
//   1. Zero cost when compiled out.  Building with -DDISCO_TELEMETRY=0 (the
//      CMake option DISCO_TELEMETRY=OFF) replaces every class here with an
//      empty inline stub, so instrumented call sites compile to nothing.
//   2. Negligible cost when compiled in but not enabled.  All mutating
//      operations are gated on a process-wide runtime flag (one relaxed
//      atomic load + predictable branch); benches that do not pass
//      --telemetry measure the same hot path as before.
//   3. Thread-safe when enabled.  Counters/gauges are relaxed atomics;
//      the histogram is an array of relaxed atomic buckets.  Telemetry is
//      monitoring, not accounting: relaxed ordering is deliberate, and a
//      snapshot taken concurrently with updates is approximate in the usual
//      monitoring sense (per-metric torn-free, cross-metric unsynchronised).
//
// The metric vocabulary is the conventional triple:
//   Counter           -- monotonically increasing event count
//   Gauge             -- instantaneous level (table occupancy, queue depth)
//   LatencyHistogram  -- log-scale distribution of nonnegative integer
//                        samples with quantile queries and lossless merge.
//                        Despite the name it records any uint64 sample
//                        (nanoseconds, probe counts, batch sizes, ...).
//   ScopeTimer        -- RAII nanosecond timer feeding a LatencyHistogram
//
// Instances are normally obtained from telemetry::Registry (registry.hpp)
// so they appear in snapshots; free-standing instances work too.
#pragma once

#include <atomic>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>

#include "util/atomic.hpp"

#ifndef DISCO_TELEMETRY
#define DISCO_TELEMETRY 1
#endif

namespace disco::telemetry {

#if DISCO_TELEMETRY

namespace detail {
extern util::atomic<bool> g_enabled;
}  // namespace detail

/// Process-wide runtime switch.  Off by default: telemetry is opt-in
/// (benches via --telemetry, tools via --metrics, tests explicitly).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event counter.  inc() is dropped while telemetry is disabled;
/// value() always reads.
///
/// The mutating slow paths of Counter/Gauge/LatencyHistogram live in
/// metrics.cpp: only the enabled() test is inlined at the call site, so the
/// instrumentation adds one load-and-branch to the caller's code -- small
/// enough not to perturb inlining and unrolling of hot loops.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (enabled()) [[unlikely]] inc_slow(n);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  void inc_slow(std::uint64_t n) noexcept;

  util::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level.  Signed: deltas may transiently undershoot zero.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (enabled()) [[unlikely]] set_slow(v);
  }
  void add(std::int64_t n) noexcept {
    if (enabled()) [[unlikely]] add_slow(n);
  }
  void sub(std::int64_t n) noexcept { add(-n); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  void set_slow(std::int64_t v) noexcept;
  void add_slow(std::int64_t n) noexcept;

  util::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-scale histogram (HdrHistogram-lite): values 0..15 get
/// exact buckets; larger values get 4 sub-buckets per octave.  Quantiles
/// report a bucket's inclusive upper bound, so they never under-report and
/// overestimate by less than one sub-bucket width: at most 25% (sub-bucket
/// 0 of an octave), 14.3% (sub-bucket 3).  256 buckets cover the full
/// uint64 range in 2 KB -- small enough to embed one per metric family.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 16 + 4 * 60;  // 256

  /// Bucket index of a sample: exact below 16, log-linear above.
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 16) return static_cast<std::size_t>(v);
    const int octave = static_cast<int>(std::bit_width(v)) - 1;  // 4..63
    const auto sub = static_cast<std::size_t>((v >> (octave - 2)) & 3);
    return 16 + static_cast<std::size_t>(octave - 4) * 4 + sub;
  }

  /// Inclusive upper bound of a bucket (the value quantiles report).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t index) noexcept {
    if (index < 16) return index;
    const std::size_t octave = 4 + (index - 16) / 4;
    const std::size_t sub = (index - 16) % 4;
    // lower = (4+sub) << (octave-2); upper = lower + width - 1.  The top
    // bucket's upper bound wraps to exactly UINT64_MAX, which is correct.
    return (static_cast<std::uint64_t>(5 + sub) << (octave - 2)) - 1;
  }

  void record(std::uint64_t v) noexcept {
    if (enabled()) [[unlikely]] record_slow(v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// q-quantile (q in [0, 1]) as the upper bound of the bucket holding the
  /// ceil(q * count)-th smallest sample.  0 when empty.  Error is bounded by
  /// the bucket width: exact below 16, < 25% overestimate above (never
  /// under-reports).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Adds another histogram's samples into this one (losslessly: buckets are
  /// aligned by construction).  Used to aggregate per-shard distributions.
  void merge_from(const LatencyHistogram& other) noexcept;

  void reset() noexcept;

 private:
  void record_slow(std::uint64_t v) noexcept;

  std::array<util::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  util::atomic<std::uint64_t> count_{0};
  util::atomic<std::uint64_t> sum_{0};
};

/// RAII timer: records the scope's wall time in nanoseconds into a
/// LatencyHistogram.  The clock is only read while telemetry is enabled.
class ScopeTimer {
 public:
  explicit ScopeTimer(LatencyHistogram& hist) noexcept {
    if (enabled()) {
      hist_ = &hist;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopeTimer() {
    if (hist_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      hist_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  LatencyHistogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

#else  // DISCO_TELEMETRY == 0: every primitive is an inline no-op.

[[nodiscard]] constexpr bool enabled() noexcept { return false; }
constexpr void set_enabled(bool) noexcept {}

class Counter {
 public:
  constexpr void inc(std::uint64_t = 1) noexcept {}
  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return 0; }
  constexpr void reset() noexcept {}
};

class Gauge {
 public:
  constexpr void set(std::int64_t) noexcept {}
  constexpr void add(std::int64_t) noexcept {}
  constexpr void sub(std::int64_t) noexcept {}
  [[nodiscard]] constexpr std::int64_t value() const noexcept { return 0; }
  constexpr void reset() noexcept {}
};

class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 0;
  constexpr void record(std::uint64_t) noexcept {}
  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] constexpr std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] constexpr std::uint64_t bucket_count(std::size_t) const noexcept {
    return 0;
  }
  [[nodiscard]] constexpr double quantile(double) const noexcept { return 0.0; }
  constexpr void merge_from(const LatencyHistogram&) noexcept {}
  constexpr void reset() noexcept {}
};

class ScopeTimer {
 public:
  constexpr explicit ScopeTimer(LatencyHistogram&) noexcept {}
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;
};

#endif  // DISCO_TELEMETRY

}  // namespace disco::telemetry
