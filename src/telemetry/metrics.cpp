#include "telemetry/metrics.hpp"

#if DISCO_TELEMETRY

namespace disco::telemetry {

namespace detail {
util::atomic<bool> g_enabled{false};
}  // namespace detail

// Out-of-line mutators: call sites inline only the enabled() test (see the
// header), so the disabled hot path stays one load-and-branch.

void Counter::inc_slow(std::uint64_t n) noexcept {
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set_slow(std::int64_t v) noexcept {
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::add_slow(std::int64_t n) noexcept {
  value_.fetch_add(n, std::memory_order_relaxed);
}

void LatencyHistogram::record_slow(std::uint64_t v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double LatencyHistogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based; q = 0 maps to the first sample.
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(target) < q * static_cast<double>(total)) ++target;
  if (target == 0) target = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= target) return static_cast<double>(bucket_upper(i));
  }
  // Snapshot race (count incremented before its bucket): report the largest
  // populated bucket instead of falling off the end.
  for (std::size_t i = kNumBuckets; i-- > 0;) {
    if (bucket_count(i) != 0) return static_cast<double>(bucket_upper(i));
  }
  return 0.0;
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace disco::telemetry

#endif  // DISCO_TELEMETRY
