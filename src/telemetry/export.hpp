// Snapshot data model and exporters.
//
// A Snapshot is a plain-data copy of every registered metric at one moment
// -- the boundary between the lock-free hot-path primitives (metrics.hpp)
// and anything that wants to look at them (CLI dumps, tests, future
// scrapers).  This header is deliberately independent of the
// DISCO_TELEMETRY toggle: a compiled-out build still produces (empty)
// snapshots and valid JSON, so downstream consumers need no conditional
// code.
//
// Two renderings are provided:
//   to_text  -- one metric per line, for eyeballing
//   to_json  -- stable machine-readable form (schema in docs/telemetry.md)
// plus snapshot_from_json, the inverse of to_json, used by tests for
// round-trip validation and by tooling that post-processes dumps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace disco::telemetry {

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType type) noexcept;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  struct Bucket {
    std::uint64_t upper = 0;  ///< inclusive upper bound of the bucket
    std::uint64_t count = 0;
    friend bool operator==(const Bucket&, const Bucket&) = default;
  };
  std::vector<Bucket> buckets;  ///< non-empty buckets, ascending upper bound
  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::int64_t value = 0;       ///< counter/gauge value (unused for histograms)
  HistogramSnapshot histogram;  ///< populated for histograms only
  friend bool operator==(const MetricSnapshot&, const MetricSnapshot&) = default;
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  ///< sorted by name
  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// One metric per line: `<type> <name> <value or histogram summary>`.
[[nodiscard]] std::string to_text(const Snapshot& snapshot);

/// Pretty-printed JSON object: {"metrics": [...]}.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Parses the output of to_json back into a Snapshot.  Accepts any JSON with
/// the expected shape (field order and whitespace are free).  Throws
/// std::runtime_error on malformed input.
[[nodiscard]] Snapshot snapshot_from_json(const std::string& json);

}  // namespace disco::telemetry
