// Burst pre-aggregation for the software pipeline -- the paper's Section VI
// optimisation ("accumulate a burst in a small exact on-chip counter, apply
// it as one discounted update") generalised from strictly consecutive
// packets to a small direct-mapped table of open bursts.
//
// Why a table and not just "previous packet": on a real link, packets of a
// burst interleave with packets of other flows (ACKs, competing flows on
// the same 5-tuple hash).  A direct-mapped table of `slots` open bursts
// still merges those interleaved runs, degrades gracefully to exact
// consecutive-merge at slots = 1, and keeps lookup O(1) with no probing:
// a slot collision simply closes the resident burst (one update) and opens
// the new one.  The paper reports ~2.5x fewer SRAM operations from this
// aggregation; here it means ~burst-length-fold fewer DISCO updates, and --
// by Theorem 2 -- *lower* estimation variance, because one large update
// replaces several small ones.
//
// Correctness: a coalesced update feeds the same unbiased Algorithm 1 with
// l = (sum of the burst's bytes), so f(c) stays an unbiased estimator of
// the flow's total traffic no matter how packets are grouped (Theorem 1 is
// per-update; linearity of expectation does the rest).  The packet count is
// carried alongside so flow *size* counting sees the burst too.
//
// Single-threaded by design: each pipeline worker owns one coalescer, as
// each MicroEngine owns its on-chip scratch counter.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "flowtable/burst.hpp"
#include "flowtable/flow_key.hpp"

namespace disco::pipeline {

/// One merged run of same-flow packets, ready to be applied as a single
/// discounted volume update (bytes) and size update (packets).  The type
/// lives in flowtable (the layer that consumes it) so the monitor's batch
/// ingest API can name it without depending on the pipeline.
using BurstUpdate = flowtable::FlowBurst;

class BurstCoalescer {
 public:
  struct Config {
    /// Open-burst table size, rounded up to a power of two; 0 disables
    /// coalescing entirely (every packet becomes a one-packet burst).
    unsigned slots = 64;
    /// A burst is closed once it holds this many packets or bytes -- the
    /// software analogue of the paper's bounded scratch counter.  Bounds
    /// both staleness (how long a packet can sit unapplied) and the size of
    /// a single discounted update.
    std::uint64_t max_burst_packets = 256;
    std::uint64_t max_burst_bytes = std::uint64_t{1} << 20;
  };

  explicit BurstCoalescer(const Config& config)
      : max_packets_(config.max_burst_packets ? config.max_burst_packets : 1),
        max_bytes_(config.max_burst_bytes ? config.max_burst_bytes : 1) {
    if (config.slots > 0) {
      unsigned n = 1;
      while (n < config.slots) n <<= 1;
      table_.resize(n);
      mask_ = n - 1;
    }
  }

  /// Adds one packet.  Invokes `sink(const BurstUpdate&)` zero or more
  /// times: when the packet's slot holds a different flow's burst (it is
  /// closed first) and/or when the packet's own burst reaches a cap.
  /// Deterministic: the emitted sequence is a pure function of the packet
  /// sequence.
  template <typename Sink>
  void add(const flowtable::FiveTuple& flow, std::uint32_t length,
           std::uint64_t now_ns, Sink&& sink) {
    add(flow, hash_tuple(flow), length, now_ns, std::forward<Sink>(sink));
  }

  /// Same, with the tuple hash already in hand (the pipeline's producers
  /// hash every packet to route it, and the hash rides in the ring
  /// message) -- must equal hash_tuple(flow).
  template <typename Sink>
  void add(const flowtable::FiveTuple& flow, std::uint64_t hash,
           std::uint32_t length, std::uint64_t now_ns, Sink&& sink) {
    if (table_.empty()) {  // coalescing disabled: pass through
      sink(BurstUpdate{flow, length, 1, now_ns});
      return;
    }
    Entry& e = table_[hash & mask_];
    if (e.open) {
      if (e.burst.flow == flow) {
        e.burst.bytes += length;
        e.burst.packets += 1;
        e.burst.last_ns = now_ns;
        ++merged_;
        if (e.burst.packets >= max_packets_ || e.burst.bytes >= max_bytes_) {
          sink(e.burst);
          e.open = false;
          --open_;
        }
        return;
      }
      sink(e.burst);  // collision: close the resident burst
      --open_;
    }
    e.burst = BurstUpdate{flow, length, 1, now_ns};
    e.open = true;
    ++open_;
  }

  /// Closes every open burst in slot order (deterministic), emptying the
  /// table.  Called at drain/rotate boundaries and when the worker idles.
  template <typename Sink>
  void flush(Sink&& sink) {
    if (open_ == 0) return;
    for (Entry& e : table_) {
      if (e.open) {
        sink(e.burst);
        e.open = false;
      }
    }
    open_ = 0;
  }

  /// Open bursts currently buffered (each awaiting a flush or a cap).
  [[nodiscard]] std::size_t open_bursts() const noexcept { return open_; }

  /// Packets absorbed into an already-open burst (the update-count saving).
  [[nodiscard]] std::uint64_t merged() const noexcept { return merged_; }

 private:
  struct Entry {
    BurstUpdate burst{};
    bool open = false;
  };

  std::vector<Entry> table_;
  std::size_t mask_ = 0;
  std::uint64_t max_packets_;
  std::uint64_t max_bytes_;
  std::uint64_t merged_ = 0;
  std::size_t open_ = 0;
};

}  // namespace disco::pipeline
