// PipelineMonitor -- the run-to-completion threaded ingest pipeline.
//
// This is the software realisation of the paper's Section VI IXP2850
// architecture (which src/sim/np_system.* only *simulates*): packets flow
// through bounded lock-free rings into worker threads, each of which is the
// EXCLUSIVE owner of one FlowMonitor shard.  Nothing on the packet path
// takes a mutex:
//
//   producer threads                     worker threads (one per shard)
//   ---------------                      -----------------------------
//   hash 5-tuple, route by        SPSC   pop a batch, coalesce bursts
//   high bits to the owning  --> rings -->  (Section VI pre-aggregation),
//   worker's ring                        apply DISCO updates to the shard
//
//   * Routing uses the hash's HIGH bits (the flow table probes with the low
//     bits), exactly like ShardedFlowMonitor, so a flow's estimates are
//     identical to a single FlowMonitor fed that shard's packet sequence.
//   * Rings are per (producer, worker) pair, so every ring has one writer
//     and one reader -- the SPSC invariant -- the same way NIC RSS gives
//     each (rx-queue, core) pair its own descriptor ring.
//   * Control-plane operations (rotate, totals, query, top-k, drain, stop,
//     ...) travel as in-band command messages through a dedicated per-worker
//     command ring and execute ON the worker thread, between batches.
//     Rotation and top-k therefore never stop ingest and never touch a
//     shard from outside -- the shard has exactly one thread, ever.
//   * Backpressure is explicit: a full ring either drops the packet
//     (`Backpressure::Drop`, counted) or spins the producer until space
//     frees (`Backpressure::Block`) -- the two policies of a real NIC queue.
//
// Epoch semantics match ShardedFlowMonitor: a rotate is applied per shard
// between batches, so packets in flight land in either the old or the new
// epoch of their shard -- the standard epoch-boundary trade of distributed
// monitors.  Every *accepted* packet is counted in exactly one epoch.
//
// Telemetry (docs/telemetry.md): per-worker ring occupancy gauges and
// pop-batch histograms, coalesce/command counters, and producer-side
// drop/block counters, plus the usual FlowMonitor families under
// `pipeline.worker_<w>.*`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flowtable/monitor.hpp"
#include "pipeline/burst_coalescer.hpp"
#include "pipeline/packet_ring.hpp"
#include "telemetry/metrics.hpp"
#include "util/atomic.hpp"
#include "util/thread_annotations.hpp"

namespace disco::pipeline {

/// What a producer does when its target ring is full.
enum class Backpressure {
  Drop,   ///< drop the packet, count it, return false (measurement-grade)
  Block,  ///< spin-yield until the worker frees space (lossless)
};

class PipelineMonitor {
 public:
  using FiveTuple = flowtable::FiveTuple;
  using FlowEstimate = flowtable::FlowMonitor::FlowEstimate;
  using Totals = flowtable::FlowMonitor::Totals;
  using EpochReport = flowtable::FlowMonitor::EpochReport;
  using MemoryReport = flowtable::FlowMonitor::MemoryReport;
  using PressureStats = flowtable::PressureStats;

  struct Config {
    flowtable::FlowMonitor::Config base;  ///< deployment totals; capacity is split
    unsigned workers = 4;                 ///< shard-owning consumer threads
    unsigned producers = 1;               ///< registered ingest threads
    std::size_t ring_capacity = 1u << 14; ///< slots per (producer, worker) ring, power of two
    std::size_t pop_batch = 256;          ///< max messages popped per ring visit
    Backpressure backpressure = Backpressure::Block;
    BurstCoalescer::Config coalescer;     ///< .slots = 0 disables coalescing
    std::string telemetry_prefix = "pipeline";
  };

  explicit PipelineMonitor(const Config& config);

  /// Stops the workers (stop()) and joins them.
  ~PipelineMonitor();

  PipelineMonitor(const PipelineMonitor&) = delete;
  PipelineMonitor& operator=(const PipelineMonitor&) = delete;

  // --- data plane ------------------------------------------------------------

  /// Enqueues one packet from producer `producer` (each producer id must be
  /// used by AT MOST one thread at a time -- it names an SPSC ring row).
  /// Returns true when the packet was accepted into its worker's ring;
  /// false when it was dropped (Drop backpressure on a full ring, or the
  /// pipeline is stopping).  Flow-table-full rejections happen later, on
  /// the worker, and are visible in `pipeline.worker_<w>.ingest_rejected_total`.
  bool ingest(unsigned producer, const FiveTuple& flow, std::uint32_t length,
              std::uint64_t now_ns = 0);

  /// One packet of the batched ingest path.
  struct PacketEvent {
    FiveTuple flow{};
    std::uint32_t length = 0;
    std::uint64_t now_ns = 0;
  };

  /// Batched form of ingest(): enqueues `n` packets and returns how many
  /// were accepted (all of them under Block backpressure unless the
  /// pipeline is stopping; possibly fewer under Drop, each miss counted in
  /// dropped()).  Same per-packet semantics and worker routing as ingest(),
  /// but the per-packet costs -- the accepting check, worker lookup, and
  /// above all the ring's release store -- are paid once per batch of
  /// same-worker packets: the producer hashes the whole batch up front,
  /// buckets it by owning worker, and writes each bucket straight into a
  /// reserved span of ring slots (SpscRing::push_prepare/push_commit).  The
  /// precomputed hash travels in the message, so the worker's coalescer and
  /// flow table never rehash the tuple.  This is the producer half of the
  /// batched-prefetch ingest design (docs/architecture.md); a few hundred
  /// packets per call amortises best, e.g. one NIC rx-burst.
  std::size_t ingest_batch(unsigned producer, const PacketEvent* packets,
                           std::size_t n);

  // --- control plane (thread-safe; in-band, never stops ingest) -------------
  // All control-plane entry points serialise on control_mutex_ internally
  // (DISCO_EXCLUDES documents they are not reentrant from a context already
  // holding it -- e.g. from inside another control call on the same thread).

  /// Ends the epoch on every shard and merges the reports.  Shards rotate
  /// one after another on their own threads; concurrent packets land in the
  /// old or new epoch of their shard.  Registered epoch subscribers observe
  /// the MERGED report exactly once per rotate, on the CALLING thread (not a
  /// worker), while control_mutex_ is held -- so module state needs no
  /// locking as long as exports happen on the control-plane thread too.
  EpochReport rotate() DISCO_EXCLUDES(control_mutex_);

  /// Subscribes a streaming consumer to merged epoch reports (see
  /// FlowMonitor::subscribe and docs/modules.md).  Serialises with the other
  /// control-plane calls; a subscriber must not call back into the
  /// pipeline's control plane from inside the callback.
  void subscribe(flowtable::FlowMonitor::EpochSubscriber subscriber)
      DISCO_EXCLUDES(control_mutex_);

  [[nodiscard]] Totals totals() DISCO_EXCLUDES(control_mutex_);
  [[nodiscard]] std::optional<FlowEstimate> query(const FiveTuple& flow)
      DISCO_EXCLUDES(control_mutex_);
  [[nodiscard]] std::vector<FlowEstimate> top_k(std::size_t k)
      DISCO_EXCLUDES(control_mutex_);
  [[nodiscard]] MemoryReport memory() DISCO_EXCLUDES(control_mutex_);
  [[nodiscard]] std::uint64_t packets_seen() DISCO_EXCLUDES(control_mutex_);
  /// Degradation counters summed over the worker shards (in-band command,
  /// like totals(); see docs/robustness.md).  Ring-full drops are a separate
  /// signal -- dropped() -- because they happen before any shard sees the
  /// packet.
  [[nodiscard]] PressureStats pressure() DISCO_EXCLUDES(control_mutex_);
  std::vector<FlowEstimate> evict_idle(std::uint64_t now_ns,
                                       std::uint64_t idle_timeout_ns)
      DISCO_EXCLUDES(control_mutex_);

  /// Blocks until every packet enqueued BEFORE this call has been applied
  /// and all open bursts are flushed.  The caller must have quiesced the
  /// producers (no concurrent ingest), or drain may chase a moving target.
  void drain() DISCO_EXCLUDES(control_mutex_);

  /// Drains and joins the worker threads.  Idempotent.  After stop(), the
  /// control-plane queries above run directly on the (now thread-less)
  /// shards, so post-mortem inspection needs no workers.  Concurrent
  /// ingest() calls fail-fast with false once stop() begins.
  void stop() DISCO_EXCLUDES(control_mutex_);

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] unsigned producer_count() const noexcept { return producers_; }

  /// Packets dropped at full rings (Drop backpressure), summed over
  /// producers.  Always counted, independent of telemetry.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Packets merged into an open burst by the coalescers (the DISCO-update
  /// saving), summed over workers.  Stable only while quiesced or stopped.
  [[nodiscard]] std::uint64_t coalesced() const noexcept;

  /// The worker/shard that owns `flow`: top 32 hash bits modulo `workers`
  /// (the flow table consumes the low bits), as in ShardedFlowMonitor.
  [[nodiscard]] static unsigned worker_of(const FiveTuple& flow,
                                          unsigned workers) noexcept {
    return static_cast<unsigned>((hash_tuple(flow) >> 32) % workers);
  }

  /// The exact FlowMonitor configuration worker `worker` runs -- exposed so
  /// tests can build a reference monitor and assert estimate parity.
  [[nodiscard]] static flowtable::FlowMonitor::Config shard_config(
      const Config& config, unsigned worker);

 private:
  /// One slot of every ring: a packet, or (command rings only) a borrowed
  /// pointer to a synchronous command the worker fills and signals.  Which
  /// union member is live is decided by the ring, not the message: packet
  /// rings carry `hash` (the producer already hashed the tuple to route it,
  /// and the worker's coalescer and flow table reuse it instead of
  /// rehashing), the command ring carries `command`.
  struct Command;
  struct Message {
    FiveTuple flow{};
    std::uint32_t length = 0;
    std::uint64_t now_ns = 0;
    union {
      Command* command = nullptr;
      std::uint64_t hash;
    };
  };

  struct Worker;

  void worker_loop(Worker& worker);
  void process_batch(Worker& worker, const Message* batch, std::size_t n);
  void handle_command(Worker& worker, Command& command);
  /// Sends `command` to worker `w`'s command ring and waits for completion;
  /// runs it inline when the workers are stopped.
  void run_on_worker(unsigned w, Command& command) DISCO_REQUIRES(control_mutex_);

  Config config_;
  unsigned producers_ = 1;

  struct ProducerStats {
    /// Bumped with relaxed fetch_add and read with relaxed loads: a pure
    /// statistic, never used to order other memory.
    alignas(kCacheLine) util::atomic<std::uint64_t> dropped{0};
    /// ingest_batch staging: one bucket of routed messages per worker.
    /// Touched only by the (single) thread driving this producer id, like
    /// the producer side of the rings themselves.
    std::vector<std::vector<Message>> buckets;
  };

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<ProducerStats>> producer_stats_;

  /// Serialises control-plane operations (one in-flight command set).
  util::Mutex control_mutex_;
  /// Flips off at stop().  release store / acquire loads: producers that
  /// observe `false` must also observe every control-plane write that
  /// preceded the flip, so none enqueues into a ring being drained down.
  util::atomic<bool> accepting_{true};
  bool running_ DISCO_GUARDED_BY(control_mutex_) = false;  ///< workers alive
  std::vector<std::thread> threads_ DISCO_GUARDED_BY(control_mutex_);
  std::vector<flowtable::FlowMonitor::EpochSubscriber> subscribers_
      DISCO_GUARDED_BY(control_mutex_);

  telemetry::Counter* dropped_metric_ = nullptr;
  telemetry::Counter* blocked_metric_ = nullptr;
};

}  // namespace disco::pipeline
