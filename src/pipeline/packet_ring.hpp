// Bounded lock-free single-producer/single-consumer ring -- the software
// analogue of the IXP2850's scratchpad rings that feed each MicroEngine
// (paper Section VI).  One thread pushes, one thread pops; there is no
// atomic read-modify-write anywhere, only loads and stores:
//
//   * `tail_` is written by the producer only, `head_` by the consumer only,
//     each on its own cache line so the two sides never false-share;
//   * each side keeps a *cached* copy of the other side's index and
//     re-reads the shared atomic only when the cache says the ring looks
//     full (producer) or empty (consumer) -- the classic optimisation that
//     turns the common case into zero cache-coherency traffic;
//   * indices are free-running (they wrap the full size_t range, not the
//     capacity), so full/empty are `tail - head == capacity` / `== 0` with
//     no wasted slot and no modulo on the fast path (capacity is a power of
//     two; slot index is `index & mask`).
//
// `pop_batch` drains up to `max` slots per call: the consumer pays the
// acquire-load and the release-store once per *batch*, not once per packet,
// which is where the pipeline's throughput over a mutex design comes from.
//
// Memory-ordering protocol (every atomic op below names its order; the
// lint_disco.py atomic-memory-order rule keeps it that way):
//   * own index, relaxed load: each side is the only writer of its own
//     index, so reading it back needs no synchronisation at all;
//   * foreign index, acquire load: paired with the opposite side's release
//     store, it makes the slot bytes written before that store visible
//     before they are read here -- the only happens-before edge the ring
//     needs;
//   * own index, release store: publishes the slot writes above it to the
//     next acquire load on the other side.
// Nothing is seq_cst: there is no third thread that could observe the two
// indices out of order, so the global order seq_cst buys is unused cost.
#pragma once

#include <algorithm>
#include <atomic>  // std::memory_order constants; the atomics themselves
                   // come from util/atomic.hpp (model-checkable shim)
#include <bit>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/atomic.hpp"

namespace disco::pipeline {

/// Destructive-interference distance.  A fixed 64 rather than
/// std::hardware_destructive_interference_size: the constant is part of the
/// ring's layout (an ABI), and gcc warns that the std value shifts with
/// -mtune.  64 is correct for every deployment target we build on.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` must be a power of two in [2, 2^31].
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    if (capacity < 2 || capacity > (std::size_t{1} << 31) ||
        !std::has_single_bit(capacity)) {
      throw std::invalid_argument(
          "SpscRing: capacity must be a power of two in [2, 2^31]");
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when the ring is full (the caller decides
  /// whether that is a drop or a retry -- backpressure policy lives above).
  bool try_push(const T& value) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, batch variant: grants direct write access to up to `n`
  /// free slots and shrinks `n` to what was granted (0 when the ring is
  /// full).  The span is contiguous in the underlying array, so a grant
  /// stops at the wrap point even when more space exists past it -- callers
  /// simply prepare again.  The producer writes the granted slots, then
  /// publishes them with ONE push_commit (one release store for the whole
  /// batch, against try_push's one per value).  No slot is visible to the
  /// consumer until the commit, and the two calls must not interleave with
  /// try_push from the same producer.
  [[nodiscard]] util::shared<T>* push_prepare(std::size_t& n) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t space = capacity_ - (tail - cached_head_);
    if (space < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      space = capacity_ - (tail - cached_head_);
    }
    const std::size_t until_wrap = capacity_ - (tail & mask_);
    n = std::min({n, space, until_wrap});
    return n == 0 ? nullptr : slots_.data() + (tail & mask_);
  }

  /// Publishes `n` slots written after a push_prepare that granted >= n.
  void push_commit(std::size_t n) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    tail_.store(tail + n, std::memory_order_release);
  }

  /// Consumer side: pops up to `max` values into `out`, returns how many.
  /// One acquire load and one release store per batch regardless of size.
  std::size_t pop_batch(T* out, std::size_t max) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    std::size_t n = cached_tail_ - head;
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) out[i] = slots_[(head + i) & mask_];
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Snapshot of the backlog; exact only from the producer or consumer
  /// thread, approximate from anywhere else (telemetry uses it as a gauge).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  /// util::shared<T> == T in normal builds; under DISCO_MODELCHECK every
  /// slot access is race-checked against the index protocol's clocks.
  std::vector<util::shared<T>> slots_;
  // Shared indices, one cache line each; then each side's private cache of
  // the opposite index, again separated so producer writes to cached_head_
  // never invalidate the consumer's line holding cached_tail_.
  alignas(kCacheLine) util::atomic<std::size_t> head_{0};  ///< consumer-owned
  alignas(kCacheLine) util::atomic<std::size_t> tail_{0};  ///< producer-owned
  alignas(kCacheLine) std::size_t cached_head_ = 0;       ///< producer's view of head_
  alignas(kCacheLine) std::size_t cached_tail_ = 0;       ///< consumer's view of tail_
};

}  // namespace disco::pipeline
