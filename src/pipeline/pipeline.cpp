#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/registry.hpp"
#include "util/fault.hpp"

namespace disco::pipeline {

// A synchronous control-plane message.  The caller allocates it on its own
// stack, pushes a pointer through the worker's command ring, and waits; the
// worker fills the result fields and signals.  Commands are serialised by
// control_mutex_, so at most one is in flight per worker.
struct PipelineMonitor::Command {
  enum class Op {
    Rotate,
    Totals,
    Query,
    TopK,
    Memory,
    PacketsSeen,
    Pressure,
    EvictIdle,
    Drain,
    Stop,
  };

  explicit Command(Op operation) : op(operation) {}

  Op op;
  // Inputs.
  FiveTuple flow{};
  std::size_t k = 0;
  std::uint64_t now_ns = 0;
  std::uint64_t idle_timeout_ns = 0;
  // Outputs (which fields are filled depends on op).
  EpochReport report;
  Totals totals;
  std::optional<FlowEstimate> estimate;
  std::vector<FlowEstimate> flows;
  MemoryReport memory;
  std::uint64_t count = 0;
  PressureStats pressure{};
  // Completion handshake.  Deliberately a plain std::mutex, not the
  // annotated util::Mutex: the condition-variable wait needs the std type,
  // and Thread Safety Analysis cannot model a cv handshake anyway.  The pair
  // is stack-local to one run_on_worker call and touched by exactly two
  // threads (requester and worker), so the invariant is structural.
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;

  void signal() {
    // Notify UNDER the lock: the waiter owns this object (its stack) and
    // destroys it the moment wait() returns, so the notify must complete
    // before the waiter can re-acquire the mutex and wake.
    const std::lock_guard<std::mutex> lock(mutex);
    done = true;
    cv.notify_one();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return done; });
  }
};

// One shard: a FlowMonitor owned exclusively by one thread, its input rings
// (one per producer plus the command ring at index `producers`), and its
// coalescer.  Only the owning worker thread touches `monitor` and
// `coalescer` while the pipeline runs; after stop() the control plane
// inherits them (the join is the handover).
struct PipelineMonitor::Worker {
  Worker(const flowtable::FlowMonitor::Config& monitor_config,
         const BurstCoalescer::Config& coalescer_config, unsigned producers,
         std::size_t ring_capacity)
      : monitor(monitor_config), coalescer(coalescer_config) {
    rings.reserve(producers + 1);
    for (unsigned p = 0; p <= producers; ++p) {
      rings.push_back(std::make_unique<SpscRing<Message>>(ring_capacity));
    }
  }

  flowtable::FlowMonitor monitor;
  BurstCoalescer coalescer;
  /// Scratch buffer: bursts emitted by the coalescer for one popped batch,
  /// applied in one monitor.ingest_batch() call so the DISCO decision
  /// tables stay hot across the whole batch.  Emission order is preserved,
  /// so the RNG stream is identical to per-burst ingest.
  std::vector<flowtable::FlowBurst> bursts;
  std::vector<std::unique_ptr<SpscRing<Message>>> rings;
  bool stop_requested = false;         ///< worker-thread-local exit flag
  std::uint64_t merged_reported = 0;   ///< coalescer.merged() already exported

  /// Race-free mirror of coalescer.merged() for cross-thread reads.
  /// Relaxed store/load: a monotonic statistic read by coalesced(); readers
  /// need a recent value, not ordering against other memory.
  alignas(kCacheLine) util::atomic<std::uint64_t> merged_mirror{0};

  telemetry::Gauge* occupancy = nullptr;
  telemetry::LatencyHistogram* pop_batch = nullptr;
  telemetry::Counter* coalesced = nullptr;
  telemetry::Counter* commands = nullptr;
};

namespace {

/// Producer-side wait: a short spin for the worker to free a slot, then
/// yield -- on an oversubscribed host the worker needs the cpu more than
/// the spinner does.
inline void backoff(unsigned& spins) noexcept {
  if (++spins < 16) return;
  std::this_thread::yield();
}

}  // namespace

flowtable::FlowMonitor::Config PipelineMonitor::shard_config(
    const Config& config, unsigned worker) {
  flowtable::FlowMonitor::Config shard = config.base;
  // Same capacity split as ShardedFlowMonitor: per-shard share plus 25%
  // headroom, because hashing is not perfectly balanced.
  shard.max_flows = std::max<std::size_t>(
      16, (config.base.max_flows / config.workers) * 5 / 4);
  shard.seed = config.base.seed + 0x9e3779b97f4a7c15ULL * (worker + 1);
  shard.telemetry_prefix =
      config.telemetry_prefix + ".worker_" + std::to_string(worker);
  return shard;
}

PipelineMonitor::PipelineMonitor(const Config& config)
    : config_(config), producers_(config.producers) {
  if (config.workers == 0 || config.workers > 256) {
    throw std::invalid_argument("PipelineMonitor: workers must be in [1, 256]");
  }
  if (config.producers == 0 || config.producers > 256) {
    throw std::invalid_argument("PipelineMonitor: producers must be in [1, 256]");
  }
  if (config.pop_batch == 0) {
    throw std::invalid_argument("PipelineMonitor: pop_batch must be >= 1");
  }
  auto& registry = telemetry::Registry::global();
  dropped_metric_ = &registry.counter(config.telemetry_prefix + ".dropped_total");
  blocked_metric_ = &registry.counter(config.telemetry_prefix + ".blocked_total");

  workers_.reserve(config.workers);
  for (unsigned w = 0; w < config.workers; ++w) {
    const auto shard = shard_config(config, w);
    workers_.push_back(std::make_unique<Worker>(shard, config.coalescer,
                                                producers_, config.ring_capacity));
    Worker& worker = *workers_.back();
    // One coalescer add() emits at most two bursts (collision close + cap
    // close), so this bound makes the steady-state batch loop allocation-free.
    worker.bursts.reserve(config.pop_batch * 2);
    const std::string& prefix = shard.telemetry_prefix;
    worker.occupancy = &registry.gauge(prefix + ".ring_occupancy");
    worker.pop_batch = &registry.histogram(prefix + ".pop_batch");
    worker.coalesced = &registry.counter(prefix + ".coalesced_total");
    worker.commands = &registry.counter(prefix + ".commands_total");
  }
  producer_stats_.reserve(producers_);
  for (unsigned p = 0; p < producers_; ++p) {
    producer_stats_.push_back(std::make_unique<ProducerStats>());
  }
  threads_.reserve(config.workers);
  for (unsigned w = 0; w < config.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(*workers_[w]); });
  }
  running_ = true;
}

PipelineMonitor::~PipelineMonitor() { stop(); }

bool PipelineMonitor::ingest(unsigned producer, const FiveTuple& flow,
                             std::uint32_t length, std::uint64_t now_ns) {
  if (producer >= producers_) {
    throw std::invalid_argument("PipelineMonitor::ingest: bad producer id");
  }
  if (!accepting_.load(std::memory_order_acquire)) return false;
  // One hash serves routing (high bits, as worker_of), the worker's
  // coalescer slot, and the flow-table probe (low bits) -- it rides in the
  // message so no downstream stage rehashes.
  const std::uint64_t hash = hash_tuple(flow);
  Worker& worker = *workers_[(hash >> 32) % workers_.size()];
  SpscRing<Message>& ring = *worker.rings[producer];
  // Fault points (compile to nothing without DISCO_FAULTS): kClockSkew
  // perturbs the timestamp feeding burst-boundary decisions downstream;
  // kRingFull fails the FIRST push attempt as if the worker had fallen
  // behind, exercising the real Drop/Block backpressure paths.  The Block
  // retry loop is deliberately un-faulted, or an always-firing plan would
  // spin the producer forever.
  Message msg{flow, length, util::fault::skew_clock(now_ns), {}};
  msg.hash = hash;
  if (!util::fault::fires(util::fault::Point::kRingFull) &&
      ring.try_push(msg)) [[likely]] {
    return true;
  }

  if (config_.backpressure == Backpressure::Drop) {
    producer_stats_[producer]->dropped.fetch_add(1, std::memory_order_relaxed);
    dropped_metric_->inc();
    return false;
  }
  blocked_metric_->inc();
  unsigned spins = 0;
  while (!ring.try_push(msg)) {
    if (!accepting_.load(std::memory_order_acquire)) return false;
    backoff(spins);
  }
  return true;
}

std::size_t PipelineMonitor::ingest_batch(unsigned producer,
                                          const PacketEvent* packets,
                                          std::size_t n) {
  if (producer >= producers_) {
    throw std::invalid_argument("PipelineMonitor::ingest_batch: bad producer id");
  }
  if (n == 0) return 0;
  if (!accepting_.load(std::memory_order_acquire)) return 0;
  ProducerStats& stats = *producer_stats_[producer];
  const unsigned workers = static_cast<unsigned>(workers_.size());

  // Phase 1 -- hash the whole batch up front and bucket by owning worker
  // (same routing as ingest(): high hash bits).  With one worker the bucket
  // step is skipped and messages are built straight into the ring span.
  if (stats.buckets.size() != workers) stats.buckets.resize(workers);
  if (workers > 1) {
    for (auto& bucket : stats.buckets) bucket.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t hash = hash_tuple(packets[i].flow);
      Message msg{packets[i].flow, packets[i].length,
                  util::fault::skew_clock(packets[i].now_ns), {}};
      msg.hash = hash;
      stats.buckets[(hash >> 32) % workers].push_back(msg);
    }
  }

  // Phase 2 -- per worker, reserve a contiguous span of ring slots, write
  // the bucket into it, and publish the whole span with one release store.
  std::size_t accepted = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const Message* bucket = nullptr;
    std::size_t remaining = 0;
    if (workers > 1) {
      bucket = stats.buckets[w].data();
      remaining = stats.buckets[w].size();
      if (remaining == 0) continue;
    } else {
      remaining = n;
    }
    SpscRing<Message>& ring = *workers_[w]->rings[producer];
    unsigned spins = 0;
    std::size_t offset = 0;
    while (remaining > 0) {
      std::size_t granted = remaining;
      // auto*: the span is util::shared<Message>* (== Message* in normal
      // builds; race-checked slots under DISCO_MODELCHECK).
      auto* slots = util::fault::fires(util::fault::Point::kRingFull)
                        ? nullptr
                        : ring.push_prepare(granted);
      if (slots == nullptr) {
        if (config_.backpressure == Backpressure::Drop) {
          stats.dropped.fetch_add(remaining, std::memory_order_relaxed);
          dropped_metric_->inc(remaining);
          break;
        }
        blocked_metric_->inc();
        do {
          if (!accepting_.load(std::memory_order_acquire)) return accepted;
          backoff(spins);
          granted = remaining;
        } while ((slots = ring.push_prepare(granted)) == nullptr);
      }
      if (bucket != nullptr) {
        std::copy(bucket + offset, bucket + offset + granted, slots);
      } else {
        for (std::size_t i = 0; i < granted; ++i) {
          const PacketEvent& pkt = packets[offset + i];
          Message msg{pkt.flow, pkt.length, util::fault::skew_clock(pkt.now_ns),
                      {}};
          msg.hash = hash_tuple(pkt.flow);
          slots[i] = msg;
        }
      }
      ring.push_commit(granted);
      offset += granted;
      accepted += granted;
      remaining -= granted;
    }
  }
  return accepted;
}

void PipelineMonitor::process_batch(Worker& worker, const Message* batch,
                                    std::size_t n) {
  // Collect the coalescer's emissions for the whole popped batch, then apply
  // them as one batched ingest.  Same bursts in the same order as calling
  // ingest_burst per emission, so estimates and the RNG stream are
  // bit-identical -- the batch form only amortises per-call overhead and
  // keeps the decision tables resident in cache.
  worker.bursts.clear();
  auto buffer = [&worker](const BurstUpdate& burst) {
    worker.bursts.push_back(burst);
  };
  for (std::size_t i = 0; i < n; ++i) {
    // Packet-ring messages carry the producer's hash (see Message): the
    // coalescer reuses it instead of rehashing the tuple per packet.
    worker.coalescer.add(batch[i].flow, batch[i].hash, batch[i].length,
                         batch[i].now_ns, buffer);
  }
  (void)worker.monitor.ingest_batch(worker.bursts);
  const std::uint64_t merged = worker.coalescer.merged();
  if (merged != worker.merged_reported) {
    worker.coalesced->inc(merged - worker.merged_reported);
    worker.merged_reported = merged;
    worker.merged_mirror.store(merged, std::memory_order_relaxed);
  }
}

void PipelineMonitor::handle_command(Worker& worker, Command& command) {
  worker.commands->inc();
  auto apply = [&worker](const BurstUpdate& burst) {
    (void)worker.monitor.ingest_burst(burst.flow, burst.bytes, burst.packets,
                                      burst.last_ns);
  };
  // Drain and Stop first absorb everything already queued; every other op
  // only needs the buffered bursts applied so reports see recent packets.
  if (command.op == Command::Op::Drain || command.op == Command::Op::Stop) {
    std::vector<Message> batch(config_.pop_batch);
    bool again = true;
    while (again) {
      again = false;
      for (unsigned p = 0; p < producers_; ++p) {
        const std::size_t n =
            worker.rings[p]->pop_batch(batch.data(), batch.size());
        if (n > 0) {
          process_batch(worker, batch.data(), n);
          again = true;
        }
      }
    }
  }
  worker.coalescer.flush(apply);

  switch (command.op) {
    case Command::Op::Rotate:
      command.report = worker.monitor.rotate();
      break;
    case Command::Op::Totals:
      command.totals = worker.monitor.totals();
      break;
    case Command::Op::Query:
      command.estimate = worker.monitor.query(command.flow);
      break;
    case Command::Op::TopK:
      command.flows = worker.monitor.top_k(command.k);
      break;
    case Command::Op::Memory:
      command.memory = worker.monitor.memory();
      break;
    case Command::Op::PacketsSeen:
      command.count = worker.monitor.packets_seen();
      break;
    case Command::Op::Pressure:
      command.pressure = worker.monitor.pressure();
      break;
    case Command::Op::EvictIdle:
      command.flows =
          worker.monitor.evict_idle(command.now_ns, command.idle_timeout_ns);
      break;
    case Command::Op::Drain:
      break;
    case Command::Op::Stop:
      worker.stop_requested = true;
      break;
  }
  command.signal();
}

void PipelineMonitor::worker_loop(Worker& worker) {
  std::vector<Message> batch(config_.pop_batch);
  SpscRing<Message>& command_ring = *worker.rings[producers_];
  auto apply = [&worker](const BurstUpdate& burst) {
    (void)worker.monitor.ingest_burst(burst.flow, burst.bytes, burst.packets,
                                      burst.last_ns);
  };
  unsigned idle = 0;
  for (;;) {
    // Commands first: they are rare and latency-sensitive (a rotate must not
    // wait behind a deep packet backlog sweep).
    Message command_msg;
    while (command_ring.pop_batch(&command_msg, 1) == 1) {
      handle_command(worker, *command_msg.command);
      if (worker.stop_requested) return;
    }

    bool any = false;
    std::size_t backlog = 0;
    for (unsigned p = 0; p < producers_; ++p) {
      SpscRing<Message>& ring = *worker.rings[p];
      const std::size_t n = ring.pop_batch(batch.data(), batch.size());
      if (n > 0) {
        any = true;
        worker.pop_batch->record(n);
        process_batch(worker, batch.data(), n);
        backlog += ring.size_approx();
      }
    }
    if (any) {
      worker.occupancy->set(static_cast<std::int64_t>(backlog));
      idle = 0;
      continue;
    }
    // Idle: back off -- briefly spin (a packet may be nanoseconds away),
    // then yield so producers and sibling workers get the core.  Open bursts
    // are closed only after a sustained idle streak: flushing on every empty
    // sweep would defeat coalescing whenever the worker outpaces its
    // producers (it would see each packet alone).  Control-plane commands
    // flush unconditionally, so queries are never stale.
    worker.occupancy->set(0);
    ++idle;
    if (idle == 64) worker.coalescer.flush(apply);
    if (idle >= 16) std::this_thread::yield();
  }
}

void PipelineMonitor::run_on_worker(unsigned w, Command& command) {
  Worker& worker = *workers_[w];
  if (!running_) {
    // Workers joined (stop() happened-before): safe to run inline.
    handle_command(worker, command);
    return;
  }
  SpscRing<Message>& ring = *worker.rings[producers_];
  Message msg;
  msg.command = &command;
  unsigned spins = 0;
  while (!ring.try_push(msg)) backoff(spins);
  command.wait();
}

void PipelineMonitor::subscribe(
    flowtable::FlowMonitor::EpochSubscriber subscriber) {
  if (!subscriber) return;
  const util::MutexLock lock(control_mutex_);
  subscribers_.push_back(std::move(subscriber));
}

PipelineMonitor::EpochReport PipelineMonitor::rotate() {
  const util::MutexLock lock(control_mutex_);
  EpochReport merged;
  bool first = true;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::Rotate);
    run_on_worker(w, command);
    if (first) {
      merged.epoch = command.report.epoch;
      first = false;
    }
    merged.flows.insert(merged.flows.end(), command.report.flows.begin(),
                        command.report.flows.end());
    merged.totals.bytes += command.report.totals.bytes;
    merged.totals.packets += command.report.totals.packets;
    merged.totals.flows += command.report.totals.flows;
    merged.pressure += command.report.pressure;
    // Max across shards: RescaleB may diverge per-shard bases (and the
    // additive estimator its per-shard error units), and the max keeps
    // merged-report confidence intervals conservative.
    merged.volume_b = std::max(merged.volume_b, command.report.volume_b);
    merged.size_b = std::max(merged.size_b, command.report.size_b);
    merged.volume_error_unit =
        std::max(merged.volume_error_unit, command.report.volume_error_unit);
    merged.size_error_unit =
        std::max(merged.size_error_unit, command.report.size_error_unit);
  }
  // Subscribers run on the rotating (control-plane) thread while ingest
  // continues on the workers; module work never stalls the packet path.
  for (const auto& subscriber : subscribers_) subscriber(merged);
  return merged;
}

PipelineMonitor::PressureStats PipelineMonitor::pressure() {
  const util::MutexLock lock(control_mutex_);
  PressureStats aggregate;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::Pressure);
    run_on_worker(w, command);
    aggregate += command.pressure;
  }
  return aggregate;
}

PipelineMonitor::Totals PipelineMonitor::totals() {
  const util::MutexLock lock(control_mutex_);
  Totals aggregate;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::Totals);
    run_on_worker(w, command);
    aggregate.bytes += command.totals.bytes;
    aggregate.packets += command.totals.packets;
    aggregate.flows += command.totals.flows;
  }
  return aggregate;
}

std::optional<PipelineMonitor::FlowEstimate> PipelineMonitor::query(
    const FiveTuple& flow) {
  const util::MutexLock lock(control_mutex_);
  Command command(Command::Op::Query);
  command.flow = flow;
  run_on_worker(worker_of(flow, static_cast<unsigned>(workers_.size())), command);
  return command.estimate;
}

std::vector<PipelineMonitor::FlowEstimate> PipelineMonitor::top_k(std::size_t k) {
  const util::MutexLock lock(control_mutex_);
  std::vector<FlowEstimate> all;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::TopK);
    command.k = k;
    run_on_worker(w, command);
    all.insert(all.end(), command.flows.begin(), command.flows.end());
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const FlowEstimate& a, const FlowEstimate& b) {
                      return a.bytes > b.bytes;
                    });
  all.resize(take);
  return all;
}

PipelineMonitor::MemoryReport PipelineMonitor::memory() {
  const util::MutexLock lock(control_mutex_);
  MemoryReport aggregate;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::Memory);
    run_on_worker(w, command);
    aggregate.volume_counter_bits += command.memory.volume_counter_bits;
    aggregate.size_counter_bits += command.memory.size_counter_bits;
    aggregate.flow_table_bits += command.memory.flow_table_bits;
  }
  return aggregate;
}

std::uint64_t PipelineMonitor::packets_seen() {
  const util::MutexLock lock(control_mutex_);
  std::uint64_t total = 0;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::PacketsSeen);
    run_on_worker(w, command);
    total += command.count;
  }
  return total;
}

std::vector<PipelineMonitor::FlowEstimate> PipelineMonitor::evict_idle(
    std::uint64_t now_ns, std::uint64_t idle_timeout_ns) {
  const util::MutexLock lock(control_mutex_);
  std::vector<FlowEstimate> merged;
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::EvictIdle);
    command.now_ns = now_ns;
    command.idle_timeout_ns = idle_timeout_ns;
    run_on_worker(w, command);
    merged.insert(merged.end(), command.flows.begin(), command.flows.end());
  }
  return merged;
}

void PipelineMonitor::drain() {
  const util::MutexLock lock(control_mutex_);
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::Drain);
    run_on_worker(w, command);
  }
}

void PipelineMonitor::stop() {
  const util::MutexLock lock(control_mutex_);
  if (!running_) return;
  accepting_.store(false, std::memory_order_release);
  for (unsigned w = 0; w < workers_.size(); ++w) {
    Command command(Command::Op::Stop);
    run_on_worker(w, command);
  }
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  running_ = false;
}

std::uint64_t PipelineMonitor::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stats : producer_stats_) {
    total += stats->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t PipelineMonitor::coalesced() const noexcept {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->merged_mirror.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace disco::pipeline
