# Empty dependencies file for disco_tracegen.
# This may be replaced when dependencies are built.
