file(REMOVE_RECURSE
  "CMakeFiles/disco_tracegen.dir/disco_tracegen.cpp.o"
  "CMakeFiles/disco_tracegen.dir/disco_tracegen.cpp.o.d"
  "disco_tracegen"
  "disco_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
