file(REMOVE_RECURSE
  "CMakeFiles/disco_analyze.dir/disco_analyze.cpp.o"
  "CMakeFiles/disco_analyze.dir/disco_analyze.cpp.o.d"
  "disco_analyze"
  "disco_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
