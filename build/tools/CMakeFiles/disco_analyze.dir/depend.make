# Empty dependencies file for disco_analyze.
# This may be replaced when dependencies are built.
