file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cb.dir/bench_ablation_cb.cpp.o"
  "CMakeFiles/bench_ablation_cb.dir/bench_ablation_cb.cpp.o.d"
  "bench_ablation_cb"
  "bench_ablation_cb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
