# Empty dependencies file for bench_ablation_cb.
# This may be replaced when dependencies are built.
