file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_walkthrough.dir/bench_fig1_walkthrough.cpp.o"
  "CMakeFiles/bench_fig1_walkthrough.dir/bench_fig1_walkthrough.cpp.o.d"
  "bench_fig1_walkthrough"
  "bench_fig1_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
