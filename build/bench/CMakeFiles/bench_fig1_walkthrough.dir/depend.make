# Empty dependencies file for bench_fig1_walkthrough.
# This may be replaced when dependencies are built.
