# Empty dependencies file for bench_fig2_cv_vs_length.
# This may be replaced when dependencies are built.
