file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cv_vs_length.dir/bench_fig2_cv_vs_length.cpp.o"
  "CMakeFiles/bench_fig2_cv_vs_length.dir/bench_fig2_cv_vs_length.cpp.o.d"
  "bench_fig2_cv_vs_length"
  "bench_fig2_cv_vs_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cv_vs_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
