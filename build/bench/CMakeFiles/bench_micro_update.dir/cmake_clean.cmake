file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_update.dir/bench_micro_update.cpp.o"
  "CMakeFiles/bench_micro_update.dir/bench_micro_update.cpp.o.d"
  "bench_micro_update"
  "bench_micro_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
