# Empty dependencies file for bench_micro_update.
# This may be replaced when dependencies are built.
