file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_np_resources.dir/bench_ablation_np_resources.cpp.o"
  "CMakeFiles/bench_ablation_np_resources.dir/bench_ablation_np_resources.cpp.o.d"
  "bench_ablation_np_resources"
  "bench_ablation_np_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_np_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
