# Empty compiler generated dependencies file for bench_ablation_np_resources.
# This may be replaced when dependencies are built.
