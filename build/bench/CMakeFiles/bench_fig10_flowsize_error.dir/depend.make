# Empty dependencies file for bench_fig10_flowsize_error.
# This may be replaced when dependencies are built.
