file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cv_vs_b.dir/bench_fig3_cv_vs_b.cpp.o"
  "CMakeFiles/bench_fig3_cv_vs_b.dir/bench_fig3_cv_vs_b.cpp.o.d"
  "bench_fig3_cv_vs_b"
  "bench_fig3_cv_vs_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cv_vs_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
