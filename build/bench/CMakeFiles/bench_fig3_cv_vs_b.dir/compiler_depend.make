# Empty compiler generated dependencies file for bench_fig3_cv_vs_b.
# This may be replaced when dependencies are built.
