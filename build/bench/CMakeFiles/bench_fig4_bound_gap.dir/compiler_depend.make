# Empty compiler generated dependencies file for bench_fig4_bound_gap.
# This may be replaced when dependencies are built.
