file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_counter_growth.dir/bench_fig9_counter_growth.cpp.o"
  "CMakeFiles/bench_fig9_counter_growth.dir/bench_fig9_counter_growth.cpp.o.d"
  "bench_fig9_counter_growth"
  "bench_fig9_counter_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_counter_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
