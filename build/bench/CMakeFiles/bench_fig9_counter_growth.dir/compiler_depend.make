# Empty compiler generated dependencies file for bench_fig9_counter_growth.
# This may be replaced when dependencies are built.
