file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sketch.dir/bench_ablation_sketch.cpp.o"
  "CMakeFiles/bench_ablation_sketch.dir/bench_ablation_sketch.cpp.o.d"
  "bench_ablation_sketch"
  "bench_ablation_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
