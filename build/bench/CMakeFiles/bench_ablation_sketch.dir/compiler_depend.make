# Empty compiler generated dependencies file for bench_ablation_sketch.
# This may be replaced when dependencies are built.
