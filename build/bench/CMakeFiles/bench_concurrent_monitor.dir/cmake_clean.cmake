file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_monitor.dir/bench_concurrent_monitor.cpp.o"
  "CMakeFiles/bench_concurrent_monitor.dir/bench_concurrent_monitor.cpp.o.d"
  "bench_concurrent_monitor"
  "bench_concurrent_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
