# Empty dependencies file for bench_concurrent_monitor.
# This may be replaced when dependencies are built.
