file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fixedpoint.dir/bench_ablation_fixedpoint.cpp.o"
  "CMakeFiles/bench_ablation_fixedpoint.dir/bench_ablation_fixedpoint.cpp.o.d"
  "bench_ablation_fixedpoint"
  "bench_ablation_fixedpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
