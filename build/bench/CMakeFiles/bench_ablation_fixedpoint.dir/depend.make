# Empty dependencies file for bench_ablation_fixedpoint.
# This may be replaced when dependencies are built.
