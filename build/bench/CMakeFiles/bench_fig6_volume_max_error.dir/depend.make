# Empty dependencies file for bench_fig6_volume_max_error.
# This may be replaced when dependencies are built.
