file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_volume_max_error.dir/bench_fig6_volume_max_error.cpp.o"
  "CMakeFiles/bench_fig6_volume_max_error.dir/bench_fig6_volume_max_error.cpp.o.d"
  "bench_fig6_volume_max_error"
  "bench_fig6_volume_max_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_volume_max_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
