file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regulation.dir/bench_ablation_regulation.cpp.o"
  "CMakeFiles/bench_ablation_regulation.dir/bench_ablation_regulation.cpp.o.d"
  "bench_ablation_regulation"
  "bench_ablation_regulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
