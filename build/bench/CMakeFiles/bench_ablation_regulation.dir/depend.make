# Empty dependencies file for bench_ablation_regulation.
# This may be replaced when dependencies are built.
