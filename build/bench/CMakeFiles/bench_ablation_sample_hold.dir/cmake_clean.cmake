file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sample_hold.dir/bench_ablation_sample_hold.cpp.o"
  "CMakeFiles/bench_ablation_sample_hold.dir/bench_ablation_sample_hold.cpp.o.d"
  "bench_ablation_sample_hold"
  "bench_ablation_sample_hold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sample_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
