# Empty compiler generated dependencies file for bench_ablation_sample_hold.
# This may be replaced when dependencies are built.
