# Empty compiler generated dependencies file for bench_table3_anls1.
# This may be replaced when dependencies are built.
