file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_anls1.dir/bench_table3_anls1.cpp.o"
  "CMakeFiles/bench_table3_anls1.dir/bench_table3_anls1.cpp.o.d"
  "bench_table3_anls1"
  "bench_table3_anls1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_anls1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
