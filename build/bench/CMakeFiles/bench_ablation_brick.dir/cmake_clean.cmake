file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_brick.dir/bench_ablation_brick.cpp.o"
  "CMakeFiles/bench_ablation_brick.dir/bench_ablation_brick.cpp.o.d"
  "bench_ablation_brick"
  "bench_ablation_brick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_brick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
