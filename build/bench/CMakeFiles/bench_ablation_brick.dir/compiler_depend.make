# Empty compiler generated dependencies file for bench_ablation_brick.
# This may be replaced when dependencies are built.
