file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_np_throughput.dir/bench_table5_np_throughput.cpp.o"
  "CMakeFiles/bench_table5_np_throughput.dir/bench_table5_np_throughput.cpp.o.d"
  "bench_table5_np_throughput"
  "bench_table5_np_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_np_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
