# Empty compiler generated dependencies file for bench_table5_np_throughput.
# This may be replaced when dependencies are built.
