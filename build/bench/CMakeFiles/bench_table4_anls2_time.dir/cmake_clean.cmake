file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_anls2_time.dir/bench_table4_anls2_time.cpp.o"
  "CMakeFiles/bench_table4_anls2_time.dir/bench_table4_anls2_time.cpp.o.d"
  "bench_table4_anls2_time"
  "bench_table4_anls2_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_anls2_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
