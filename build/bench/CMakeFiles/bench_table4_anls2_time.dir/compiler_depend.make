# Empty compiler generated dependencies file for bench_table4_anls2_time.
# This may be replaced when dependencies are built.
