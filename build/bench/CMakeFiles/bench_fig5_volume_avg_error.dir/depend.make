# Empty dependencies file for bench_fig5_volume_avg_error.
# This may be replaced when dependencies are built.
