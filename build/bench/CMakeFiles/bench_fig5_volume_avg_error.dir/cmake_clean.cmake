file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_volume_avg_error.dir/bench_fig5_volume_avg_error.cpp.o"
  "CMakeFiles/bench_fig5_volume_avg_error.dir/bench_fig5_volume_avg_error.cpp.o.d"
  "bench_fig5_volume_avg_error"
  "bench_fig5_volume_avg_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_volume_avg_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
