# Empty compiler generated dependencies file for bench_fig8_error_cdf.
# This may be replaced when dependencies are built.
