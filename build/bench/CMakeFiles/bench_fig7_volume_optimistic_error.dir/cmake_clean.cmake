file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_volume_optimistic_error.dir/bench_fig7_volume_optimistic_error.cpp.o"
  "CMakeFiles/bench_fig7_volume_optimistic_error.dir/bench_fig7_volume_optimistic_error.cpp.o.d"
  "bench_fig7_volume_optimistic_error"
  "bench_fig7_volume_optimistic_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_volume_optimistic_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
