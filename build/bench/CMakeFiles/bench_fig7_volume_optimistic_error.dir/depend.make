# Empty dependencies file for bench_fig7_volume_optimistic_error.
# This may be replaced when dependencies are built.
