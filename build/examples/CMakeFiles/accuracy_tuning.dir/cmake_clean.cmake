file(REMOVE_RECURSE
  "CMakeFiles/accuracy_tuning.dir/accuracy_tuning.cpp.o"
  "CMakeFiles/accuracy_tuning.dir/accuracy_tuning.cpp.o.d"
  "accuracy_tuning"
  "accuracy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
