# Empty dependencies file for accuracy_tuning.
# This may be replaced when dependencies are built.
