file(REMOVE_RECURSE
  "CMakeFiles/np_pipeline.dir/np_pipeline.cpp.o"
  "CMakeFiles/np_pipeline.dir/np_pipeline.cpp.o.d"
  "np_pipeline"
  "np_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
