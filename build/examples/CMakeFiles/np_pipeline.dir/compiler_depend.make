# Empty compiler generated dependencies file for np_pipeline.
# This may be replaced when dependencies are built.
