# Empty dependencies file for flow_monitor.
# This may be replaced when dependencies are built.
