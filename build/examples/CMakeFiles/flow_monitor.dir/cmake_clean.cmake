file(REMOVE_RECURSE
  "CMakeFiles/flow_monitor.dir/flow_monitor.cpp.o"
  "CMakeFiles/flow_monitor.dir/flow_monitor.cpp.o.d"
  "flow_monitor"
  "flow_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
