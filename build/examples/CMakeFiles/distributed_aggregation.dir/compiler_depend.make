# Empty compiler generated dependencies file for distributed_aggregation.
# This may be replaced when dependencies are built.
