file(REMOVE_RECURSE
  "CMakeFiles/distributed_aggregation.dir/distributed_aggregation.cpp.o"
  "CMakeFiles/distributed_aggregation.dir/distributed_aggregation.cpp.o.d"
  "distributed_aggregation"
  "distributed_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
