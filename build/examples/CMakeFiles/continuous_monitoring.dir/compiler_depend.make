# Empty compiler generated dependencies file for continuous_monitoring.
# This may be replaced when dependencies are built.
