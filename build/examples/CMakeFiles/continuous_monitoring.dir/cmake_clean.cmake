file(REMOVE_RECURSE
  "CMakeFiles/continuous_monitoring.dir/continuous_monitoring.cpp.o"
  "CMakeFiles/continuous_monitoring.dir/continuous_monitoring.cpp.o.d"
  "continuous_monitoring"
  "continuous_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
