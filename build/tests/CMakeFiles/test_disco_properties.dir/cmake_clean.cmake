file(REMOVE_RECURSE
  "CMakeFiles/test_disco_properties.dir/test_disco_properties.cpp.o"
  "CMakeFiles/test_disco_properties.dir/test_disco_properties.cpp.o.d"
  "test_disco_properties"
  "test_disco_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disco_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
