# Empty compiler generated dependencies file for test_disco_properties.
# This may be replaced when dependencies are built.
