file(REMOVE_RECURSE
  "CMakeFiles/test_flow_table_v6.dir/test_flow_table_v6.cpp.o"
  "CMakeFiles/test_flow_table_v6.dir/test_flow_table_v6.cpp.o.d"
  "test_flow_table_v6"
  "test_flow_table_v6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_table_v6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
