# Empty compiler generated dependencies file for test_flow_table_v6.
# This may be replaced when dependencies are built.
