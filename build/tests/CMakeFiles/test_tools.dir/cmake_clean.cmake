file(REMOVE_RECURSE
  "CMakeFiles/test_tools.dir/test_tools.cpp.o"
  "CMakeFiles/test_tools.dir/test_tools.cpp.o.d"
  "test_tools"
  "test_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
