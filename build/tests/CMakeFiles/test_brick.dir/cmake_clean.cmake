file(REMOVE_RECURSE
  "CMakeFiles/test_brick.dir/test_brick.cpp.o"
  "CMakeFiles/test_brick.dir/test_brick.cpp.o.d"
  "test_brick"
  "test_brick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
