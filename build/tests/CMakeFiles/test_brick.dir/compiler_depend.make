# Empty compiler generated dependencies file for test_brick.
# This may be replaced when dependencies are built.
