file(REMOVE_RECURSE
  "CMakeFiles/test_indexed_heap.dir/test_indexed_heap.cpp.o"
  "CMakeFiles/test_indexed_heap.dir/test_indexed_heap.cpp.o.d"
  "test_indexed_heap"
  "test_indexed_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indexed_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
