file(REMOVE_RECURSE
  "CMakeFiles/test_disco_sketch.dir/test_disco_sketch.cpp.o"
  "CMakeFiles/test_disco_sketch.dir/test_disco_sketch.cpp.o.d"
  "test_disco_sketch"
  "test_disco_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disco_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
