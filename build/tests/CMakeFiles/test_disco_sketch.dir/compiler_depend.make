# Empty compiler generated dependencies file for test_disco_sketch.
# This may be replaced when dependencies are built.
