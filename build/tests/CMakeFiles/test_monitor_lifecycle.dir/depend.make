# Empty dependencies file for test_monitor_lifecycle.
# This may be replaced when dependencies are built.
