file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_lifecycle.dir/test_monitor_lifecycle.cpp.o"
  "CMakeFiles/test_monitor_lifecycle.dir/test_monitor_lifecycle.cpp.o.d"
  "test_monitor_lifecycle"
  "test_monitor_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
