file(REMOVE_RECURSE
  "CMakeFiles/test_fenwick.dir/test_fenwick.cpp.o"
  "CMakeFiles/test_fenwick.dir/test_fenwick.cpp.o.d"
  "test_fenwick"
  "test_fenwick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fenwick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
