# Empty dependencies file for test_fenwick.
# This may be replaced when dependencies are built.
