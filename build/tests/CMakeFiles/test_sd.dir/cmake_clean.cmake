file(REMOVE_RECURSE
  "CMakeFiles/test_sd.dir/test_sd.cpp.o"
  "CMakeFiles/test_sd.dir/test_sd.cpp.o.d"
  "test_sd"
  "test_sd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
