# Empty dependencies file for test_sd.
# This may be replaced when dependencies are built.
