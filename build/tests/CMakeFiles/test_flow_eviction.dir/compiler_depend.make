# Empty compiler generated dependencies file for test_flow_eviction.
# This may be replaced when dependencies are built.
