file(REMOVE_RECURSE
  "CMakeFiles/test_flow_eviction.dir/test_flow_eviction.cpp.o"
  "CMakeFiles/test_flow_eviction.dir/test_flow_eviction.cpp.o.d"
  "test_flow_eviction"
  "test_flow_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
