file(REMOVE_RECURSE
  "CMakeFiles/test_regulation.dir/test_regulation.cpp.o"
  "CMakeFiles/test_regulation.dir/test_regulation.cpp.o.d"
  "test_regulation"
  "test_regulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
