# Empty compiler generated dependencies file for test_regulation.
# This may be replaced when dependencies are built.
