file(REMOVE_RECURSE
  "CMakeFiles/test_merge_ci.dir/test_merge_ci.cpp.o"
  "CMakeFiles/test_merge_ci.dir/test_merge_ci.cpp.o.d"
  "test_merge_ci"
  "test_merge_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
