# Empty compiler generated dependencies file for test_merge_ci.
# This may be replaced when dependencies are built.
