
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_anls.cpp" "tests/CMakeFiles/test_anls.dir/test_anls.cpp.o" "gcc" "tests/CMakeFiles/test_anls.dir/test_anls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flowtable/CMakeFiles/disco_flowtable.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/disco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/disco_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/disco_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/disco_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/disco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/disco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
