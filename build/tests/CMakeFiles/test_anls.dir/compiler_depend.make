# Empty compiler generated dependencies file for test_anls.
# This may be replaced when dependencies are built.
