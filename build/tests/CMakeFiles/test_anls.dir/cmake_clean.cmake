file(REMOVE_RECURSE
  "CMakeFiles/test_anls.dir/test_anls.cpp.o"
  "CMakeFiles/test_anls.dir/test_anls.cpp.o.d"
  "test_anls"
  "test_anls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
