file(REMOVE_RECURSE
  "CMakeFiles/test_flow_table.dir/test_flow_table.cpp.o"
  "CMakeFiles/test_flow_table.dir/test_flow_table.cpp.o.d"
  "test_flow_table"
  "test_flow_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
