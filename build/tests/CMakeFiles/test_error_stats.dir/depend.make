# Empty dependencies file for test_error_stats.
# This may be replaced when dependencies are built.
