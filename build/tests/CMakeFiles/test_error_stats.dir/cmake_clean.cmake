file(REMOVE_RECURSE
  "CMakeFiles/test_error_stats.dir/test_error_stats.cpp.o"
  "CMakeFiles/test_error_stats.dir/test_error_stats.cpp.o.d"
  "test_error_stats"
  "test_error_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
