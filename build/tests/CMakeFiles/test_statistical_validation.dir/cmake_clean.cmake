file(REMOVE_RECURSE
  "CMakeFiles/test_statistical_validation.dir/test_statistical_validation.cpp.o"
  "CMakeFiles/test_statistical_validation.dir/test_statistical_validation.cpp.o.d"
  "test_statistical_validation"
  "test_statistical_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statistical_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
