# Empty dependencies file for test_statistical_validation.
# This may be replaced when dependencies are built.
