file(REMOVE_RECURSE
  "CMakeFiles/test_disco_fixed.dir/test_disco_fixed.cpp.o"
  "CMakeFiles/test_disco_fixed.dir/test_disco_fixed.cpp.o.d"
  "test_disco_fixed"
  "test_disco_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disco_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
