# Empty dependencies file for test_sample_hold.
# This may be replaced when dependencies are built.
