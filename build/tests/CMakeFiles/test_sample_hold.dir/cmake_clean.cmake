file(REMOVE_RECURSE
  "CMakeFiles/test_sample_hold.dir/test_sample_hold.cpp.o"
  "CMakeFiles/test_sample_hold.dir/test_sample_hold.cpp.o.d"
  "test_sample_hold"
  "test_sample_hold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
