# Empty compiler generated dependencies file for test_adaptive_netflow.
# This may be replaced when dependencies are built.
