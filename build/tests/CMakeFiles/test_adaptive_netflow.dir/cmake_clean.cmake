file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_netflow.dir/test_adaptive_netflow.cpp.o"
  "CMakeFiles/test_adaptive_netflow.dir/test_adaptive_netflow.cpp.o.d"
  "test_adaptive_netflow"
  "test_adaptive_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
