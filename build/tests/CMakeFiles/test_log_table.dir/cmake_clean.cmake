file(REMOVE_RECURSE
  "CMakeFiles/test_log_table.dir/test_log_table.cpp.o"
  "CMakeFiles/test_log_table.dir/test_log_table.cpp.o.d"
  "test_log_table"
  "test_log_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
