# Empty dependencies file for test_log_table.
# This may be replaced when dependencies are built.
