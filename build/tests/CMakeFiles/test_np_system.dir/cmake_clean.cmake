file(REMOVE_RECURSE
  "CMakeFiles/test_np_system.dir/test_np_system.cpp.o"
  "CMakeFiles/test_np_system.dir/test_np_system.cpp.o.d"
  "test_np_system"
  "test_np_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_np_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
