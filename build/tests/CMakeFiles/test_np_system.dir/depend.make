# Empty dependencies file for test_np_system.
# This may be replaced when dependencies are built.
