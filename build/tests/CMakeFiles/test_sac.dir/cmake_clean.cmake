file(REMOVE_RECURSE
  "CMakeFiles/test_sac.dir/test_sac.cpp.o"
  "CMakeFiles/test_sac.dir/test_sac.cpp.o.d"
  "test_sac"
  "test_sac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
