# Empty dependencies file for test_sac.
# This may be replaced when dependencies are built.
