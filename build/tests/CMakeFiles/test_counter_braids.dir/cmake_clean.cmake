file(REMOVE_RECURSE
  "CMakeFiles/test_counter_braids.dir/test_counter_braids.cpp.o"
  "CMakeFiles/test_counter_braids.dir/test_counter_braids.cpp.o.d"
  "test_counter_braids"
  "test_counter_braids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_braids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
