# Empty dependencies file for test_counter_braids.
# This may be replaced when dependencies are built.
