file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_monitor.dir/test_sharded_monitor.cpp.o"
  "CMakeFiles/test_sharded_monitor.dir/test_sharded_monitor.cpp.o.d"
  "test_sharded_monitor"
  "test_sharded_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
