# Empty compiler generated dependencies file for test_sharded_monitor.
# This may be replaced when dependencies are built.
