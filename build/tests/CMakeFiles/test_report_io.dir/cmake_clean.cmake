file(REMOVE_RECURSE
  "CMakeFiles/test_report_io.dir/test_report_io.cpp.o"
  "CMakeFiles/test_report_io.dir/test_report_io.cpp.o.d"
  "test_report_io"
  "test_report_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
