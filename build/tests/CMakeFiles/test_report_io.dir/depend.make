# Empty dependencies file for test_report_io.
# This may be replaced when dependencies are built.
