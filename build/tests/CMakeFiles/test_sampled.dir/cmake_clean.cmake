file(REMOVE_RECURSE
  "CMakeFiles/test_sampled.dir/test_sampled.cpp.o"
  "CMakeFiles/test_sampled.dir/test_sampled.cpp.o.d"
  "test_sampled"
  "test_sampled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
