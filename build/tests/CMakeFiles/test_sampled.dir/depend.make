# Empty dependencies file for test_sampled.
# This may be replaced when dependencies are built.
