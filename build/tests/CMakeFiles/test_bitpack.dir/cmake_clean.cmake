file(REMOVE_RECURSE
  "CMakeFiles/test_bitpack.dir/test_bitpack.cpp.o"
  "CMakeFiles/test_bitpack.dir/test_bitpack.cpp.o.d"
  "test_bitpack"
  "test_bitpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
