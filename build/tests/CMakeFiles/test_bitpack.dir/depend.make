# Empty dependencies file for test_bitpack.
# This may be replaced when dependencies are built.
