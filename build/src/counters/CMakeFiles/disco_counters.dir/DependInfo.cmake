
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counters/adaptive_netflow.cpp" "src/counters/CMakeFiles/disco_counters.dir/adaptive_netflow.cpp.o" "gcc" "src/counters/CMakeFiles/disco_counters.dir/adaptive_netflow.cpp.o.d"
  "/root/repo/src/counters/anls.cpp" "src/counters/CMakeFiles/disco_counters.dir/anls.cpp.o" "gcc" "src/counters/CMakeFiles/disco_counters.dir/anls.cpp.o.d"
  "/root/repo/src/counters/brick.cpp" "src/counters/CMakeFiles/disco_counters.dir/brick.cpp.o" "gcc" "src/counters/CMakeFiles/disco_counters.dir/brick.cpp.o.d"
  "/root/repo/src/counters/counter_braids.cpp" "src/counters/CMakeFiles/disco_counters.dir/counter_braids.cpp.o" "gcc" "src/counters/CMakeFiles/disco_counters.dir/counter_braids.cpp.o.d"
  "/root/repo/src/counters/sac.cpp" "src/counters/CMakeFiles/disco_counters.dir/sac.cpp.o" "gcc" "src/counters/CMakeFiles/disco_counters.dir/sac.cpp.o.d"
  "/root/repo/src/counters/sd.cpp" "src/counters/CMakeFiles/disco_counters.dir/sd.cpp.o" "gcc" "src/counters/CMakeFiles/disco_counters.dir/sd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/disco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
