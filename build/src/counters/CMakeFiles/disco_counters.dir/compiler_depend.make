# Empty compiler generated dependencies file for disco_counters.
# This may be replaced when dependencies are built.
