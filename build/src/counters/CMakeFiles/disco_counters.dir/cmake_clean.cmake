file(REMOVE_RECURSE
  "CMakeFiles/disco_counters.dir/adaptive_netflow.cpp.o"
  "CMakeFiles/disco_counters.dir/adaptive_netflow.cpp.o.d"
  "CMakeFiles/disco_counters.dir/anls.cpp.o"
  "CMakeFiles/disco_counters.dir/anls.cpp.o.d"
  "CMakeFiles/disco_counters.dir/brick.cpp.o"
  "CMakeFiles/disco_counters.dir/brick.cpp.o.d"
  "CMakeFiles/disco_counters.dir/counter_braids.cpp.o"
  "CMakeFiles/disco_counters.dir/counter_braids.cpp.o.d"
  "CMakeFiles/disco_counters.dir/sac.cpp.o"
  "CMakeFiles/disco_counters.dir/sac.cpp.o.d"
  "CMakeFiles/disco_counters.dir/sd.cpp.o"
  "CMakeFiles/disco_counters.dir/sd.cpp.o.d"
  "libdisco_counters.a"
  "libdisco_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
