file(REMOVE_RECURSE
  "libdisco_counters.a"
)
