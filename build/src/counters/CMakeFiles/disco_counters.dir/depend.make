# Empty dependencies file for disco_counters.
# This may be replaced when dependencies are built.
