# Empty compiler generated dependencies file for disco_util.
# This may be replaced when dependencies are built.
