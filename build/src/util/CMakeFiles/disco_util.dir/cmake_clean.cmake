file(REMOVE_RECURSE
  "CMakeFiles/disco_util.dir/histogram.cpp.o"
  "CMakeFiles/disco_util.dir/histogram.cpp.o.d"
  "CMakeFiles/disco_util.dir/log_table.cpp.o"
  "CMakeFiles/disco_util.dir/log_table.cpp.o.d"
  "CMakeFiles/disco_util.dir/math.cpp.o"
  "CMakeFiles/disco_util.dir/math.cpp.o.d"
  "libdisco_util.a"
  "libdisco_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
