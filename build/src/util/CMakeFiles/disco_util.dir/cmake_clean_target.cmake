file(REMOVE_RECURSE
  "libdisco_util.a"
)
