file(REMOVE_RECURSE
  "libdisco_trace.a"
)
