# Empty dependencies file for disco_trace.
# This may be replaced when dependencies are built.
