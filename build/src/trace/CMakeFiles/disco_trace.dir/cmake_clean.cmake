file(REMOVE_RECURSE
  "CMakeFiles/disco_trace.dir/distributions.cpp.o"
  "CMakeFiles/disco_trace.dir/distributions.cpp.o.d"
  "CMakeFiles/disco_trace.dir/pcap.cpp.o"
  "CMakeFiles/disco_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/disco_trace.dir/synthetic.cpp.o"
  "CMakeFiles/disco_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/disco_trace.dir/trace_io.cpp.o"
  "CMakeFiles/disco_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/disco_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/disco_trace.dir/trace_stats.cpp.o.d"
  "libdisco_trace.a"
  "libdisco_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
