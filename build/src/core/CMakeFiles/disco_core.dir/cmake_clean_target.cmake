file(REMOVE_RECURSE
  "libdisco_core.a"
)
