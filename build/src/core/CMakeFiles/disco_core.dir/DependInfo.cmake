
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/disco.cpp" "src/core/CMakeFiles/disco_core.dir/disco.cpp.o" "gcc" "src/core/CMakeFiles/disco_core.dir/disco.cpp.o.d"
  "/root/repo/src/core/disco_fixed.cpp" "src/core/CMakeFiles/disco_core.dir/disco_fixed.cpp.o" "gcc" "src/core/CMakeFiles/disco_core.dir/disco_fixed.cpp.o.d"
  "/root/repo/src/core/disco_sketch.cpp" "src/core/CMakeFiles/disco_core.dir/disco_sketch.cpp.o" "gcc" "src/core/CMakeFiles/disco_core.dir/disco_sketch.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/disco_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/disco_core.dir/theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/disco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
