file(REMOVE_RECURSE
  "CMakeFiles/disco_core.dir/disco.cpp.o"
  "CMakeFiles/disco_core.dir/disco.cpp.o.d"
  "CMakeFiles/disco_core.dir/disco_fixed.cpp.o"
  "CMakeFiles/disco_core.dir/disco_fixed.cpp.o.d"
  "CMakeFiles/disco_core.dir/disco_sketch.cpp.o"
  "CMakeFiles/disco_core.dir/disco_sketch.cpp.o.d"
  "CMakeFiles/disco_core.dir/theory.cpp.o"
  "CMakeFiles/disco_core.dir/theory.cpp.o.d"
  "libdisco_core.a"
  "libdisco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
