# Empty dependencies file for disco_core.
# This may be replaced when dependencies are built.
