# Empty dependencies file for disco_stats.
# This may be replaced when dependencies are built.
