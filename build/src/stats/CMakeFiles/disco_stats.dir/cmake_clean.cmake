file(REMOVE_RECURSE
  "CMakeFiles/disco_stats.dir/error.cpp.o"
  "CMakeFiles/disco_stats.dir/error.cpp.o.d"
  "CMakeFiles/disco_stats.dir/experiment.cpp.o"
  "CMakeFiles/disco_stats.dir/experiment.cpp.o.d"
  "CMakeFiles/disco_stats.dir/methods.cpp.o"
  "CMakeFiles/disco_stats.dir/methods.cpp.o.d"
  "CMakeFiles/disco_stats.dir/table.cpp.o"
  "CMakeFiles/disco_stats.dir/table.cpp.o.d"
  "libdisco_stats.a"
  "libdisco_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
