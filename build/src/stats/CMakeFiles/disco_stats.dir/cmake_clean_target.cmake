file(REMOVE_RECURSE
  "libdisco_stats.a"
)
