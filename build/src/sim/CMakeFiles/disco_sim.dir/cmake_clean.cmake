file(REMOVE_RECURSE
  "CMakeFiles/disco_sim.dir/event_queue.cpp.o"
  "CMakeFiles/disco_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/disco_sim.dir/np_system.cpp.o"
  "CMakeFiles/disco_sim.dir/np_system.cpp.o.d"
  "libdisco_sim.a"
  "libdisco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
