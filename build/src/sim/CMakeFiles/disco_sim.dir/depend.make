# Empty dependencies file for disco_sim.
# This may be replaced when dependencies are built.
