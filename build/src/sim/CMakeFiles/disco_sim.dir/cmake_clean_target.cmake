file(REMOVE_RECURSE
  "libdisco_sim.a"
)
