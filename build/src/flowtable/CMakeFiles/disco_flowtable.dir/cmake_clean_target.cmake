file(REMOVE_RECURSE
  "libdisco_flowtable.a"
)
