# Empty dependencies file for disco_flowtable.
# This may be replaced when dependencies are built.
