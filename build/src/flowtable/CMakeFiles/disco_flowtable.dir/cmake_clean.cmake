file(REMOVE_RECURSE
  "CMakeFiles/disco_flowtable.dir/monitor.cpp.o"
  "CMakeFiles/disco_flowtable.dir/monitor.cpp.o.d"
  "CMakeFiles/disco_flowtable.dir/report_io.cpp.o"
  "CMakeFiles/disco_flowtable.dir/report_io.cpp.o.d"
  "CMakeFiles/disco_flowtable.dir/sharded_monitor.cpp.o"
  "CMakeFiles/disco_flowtable.dir/sharded_monitor.cpp.o.d"
  "libdisco_flowtable.a"
  "libdisco_flowtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_flowtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
