
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowtable/monitor.cpp" "src/flowtable/CMakeFiles/disco_flowtable.dir/monitor.cpp.o" "gcc" "src/flowtable/CMakeFiles/disco_flowtable.dir/monitor.cpp.o.d"
  "/root/repo/src/flowtable/report_io.cpp" "src/flowtable/CMakeFiles/disco_flowtable.dir/report_io.cpp.o" "gcc" "src/flowtable/CMakeFiles/disco_flowtable.dir/report_io.cpp.o.d"
  "/root/repo/src/flowtable/sharded_monitor.cpp" "src/flowtable/CMakeFiles/disco_flowtable.dir/sharded_monitor.cpp.o" "gcc" "src/flowtable/CMakeFiles/disco_flowtable.dir/sharded_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/disco_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/disco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/disco_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
