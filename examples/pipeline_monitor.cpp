// pipeline_monitor: the lock-free threaded ingest pipeline, end to end.
//
//   $ ./pipeline_monitor [producers]
//
// Two producer threads push bursty traffic into per-worker SPSC rings while
// the control plane -- without ever stopping ingest -- rotates an epoch
// mid-stream, queries a hot flow, and finally drains and prints the top
// talkers.  This is the software shape of the paper's Section VI IXP2850
// deployment: ring-fed run-to-completion workers, each exclusively owning
// one shard, with burst pre-aggregation in front of the DISCO update.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "stats/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "util/atomic.hpp"

namespace {

disco::flowtable::FiveTuple tuple_for(std::uint32_t flow_id) {
  return disco::flowtable::FiveTuple{0x0a000000u + flow_id, 0xc0a80101u,
                                     static_cast<std::uint16_t>(1024 + flow_id),
                                     443, 6};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const unsigned producers =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;

  telemetry::set_enabled(true);  // show the pipeline's metric families

  pipeline::PipelineMonitor::Config config;
  config.base.max_flows = 16384;
  config.base.counter_bits = 12;
  config.base.max_flow_bytes = 1 << 28;
  config.base.max_flow_packets = 1 << 20;
  config.base.seed = 20100621;
  config.workers = 2;                  // two exclusive FlowMonitor shards
  config.producers = producers;
  config.backpressure = pipeline::Backpressure::Block;  // lossless ingest
  pipeline::PipelineMonitor monitor(config);

  // Producers: bursty traffic, a few elephants among many mice.
  disco::util::atomic<std::uint64_t> sent{0};
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      util::Rng rng(7000 + p);
      for (int burst = 0; burst < 20000; ++burst) {
        const auto flow = static_cast<std::uint32_t>(
            rng.uniform_u64(0, 255) & rng.uniform_u64(0, 255));  // skewed
        const std::uint64_t run = 1 + rng.uniform_u64(0, 7);
        for (std::uint64_t i = 0; i < run; ++i) {
          const auto len = static_cast<std::uint32_t>(rng.uniform_u64(64, 1500));
          (void)monitor.ingest(p, tuple_for(flow), len);
          sent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Control plane, concurrent with ingest: rotate an epoch mid-stream --
  // the command travels through the same ring fabric as the packets, so
  // ingest never pauses.
  while (sent.load(std::memory_order_relaxed) < 50000) std::this_thread::yield();
  const auto epoch0 = monitor.rotate();
  std::cout << "epoch " << epoch0.epoch << " exported mid-stream: "
            << epoch0.totals.flows << " flows, ~"
            << static_cast<std::uint64_t>(epoch0.totals.packets)
            << " packets (ingest never stopped)\n";
  if (const auto hot = monitor.query(tuple_for(0))) {
    std::cout << "flow 0 so far this epoch: ~"
              << static_cast<std::uint64_t>(hot->bytes) << " bytes\n";
  }

  for (auto& t : threads) t.join();
  monitor.drain();  // producers quiesced: apply every queued packet

  std::cout << "\ntotal packets counted: " << monitor.packets_seen()
            << " (sent " << sent.load(std::memory_order_relaxed) << "), "
            << monitor.coalesced()
            << " merged into bursts before their DISCO update\n\n";

  stats::TextTable table({"rank", "flow (src port)", "est. bytes", "est. packets"});
  const auto top = monitor.top_k(5);
  for (std::size_t i = 0; i < top.size(); ++i) {
    table.add_row({std::to_string(i + 1),
                   std::to_string(top[i].flow.src_port),
                   std::to_string(static_cast<std::uint64_t>(top[i].bytes)),
                   std::to_string(static_cast<std::uint64_t>(top[i].packets))});
  }
  table.print(std::cout);

  monitor.stop();
  std::cout << "\npipeline.* metrics:\n"
            << telemetry::to_text(telemetry::Registry::global().snapshot());
  return 0;
}
