// heavy_hitters: elephant-flow detection on DISCO estimates.
//
//   $ ./heavy_hitters [threshold_share_percent]
//
// The motivating application of per-flow volume statistics: find the flows
// that carry more than a configurable share of the traffic.  Detection runs
// on DISCO's compressed counters and is scored against exact accounting
// (precision / recall / F1), demonstrating that a few SRAM bits per flow
// suffice for reliable elephant detection.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>

#include "core/disco.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace disco;
  const double threshold_pct = argc > 1 ? std::atof(argv[1]) : 0.1;

  util::Rng rng(99);
  const auto flows = trace::real_trace_model().make_flows(3000, rng);
  std::uint64_t total_bytes = 0;
  std::uint64_t max_flow = 1;
  for (const auto& f : flows) {
    total_bytes += f.bytes();
    max_flow = std::max(max_flow, f.bytes());
  }
  const auto threshold = static_cast<std::uint64_t>(
      static_cast<double>(total_bytes) * threshold_pct / 100.0);
  std::cout << "traffic: " << flows.size() << " flows, " << total_bytes
            << " bytes; elephant threshold " << threshold << " bytes ("
            << threshold_pct << "% of traffic)\n\n";

  // Ground truth elephants.
  std::set<std::uint32_t> true_elephants;
  for (const auto& f : flows) {
    if (f.bytes() >= threshold) true_elephants.insert(f.id);
  }

  stats::TextTable table({"counter bits", "b", "flagged", "precision",
                          "recall", "F1"});
  for (int bits : {8, 10, 12}) {
    core::DiscoArray counters(flows.size(), bits, 2 * max_flow);
    for (const auto& f : flows) {
      for (auto l : f.lengths) counters.add(f.id, l, rng);
    }
    std::set<std::uint32_t> flagged;
    for (const auto& f : flows) {
      if (counters.estimate(f.id) >= static_cast<double>(threshold)) {
        flagged.insert(f.id);
      }
    }
    std::size_t hits = 0;
    for (auto id : flagged) hits += true_elephants.count(id);
    const double precision =
        flagged.empty() ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(flagged.size());
    const double recall = true_elephants.empty()
                              ? 1.0
                              : static_cast<double>(hits) /
                                    static_cast<double>(true_elephants.size());
    const double f1 = (precision + recall) == 0.0
                          ? 0.0
                          : 2.0 * precision * recall / (precision + recall);
    table.add_row({std::to_string(bits), stats::fmt(counters.params().b(), 5),
                   std::to_string(flagged.size()), stats::fmt(precision, 3),
                   stats::fmt(recall, 3), stats::fmt(f1, 3)});
  }
  table.print(std::cout);
  std::cout << "\ntrue elephants: " << true_elephants.size()
            << ".  DISCO's unbiased estimates keep both error directions\n"
               "balanced, so detection quality climbs quickly with counter\n"
               "bits -- 12-bit counters are near-perfect here while costing\n"
               "a fraction of exact 64-bit accounting.\n";
  return 0;
}
