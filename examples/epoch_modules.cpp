// epoch_modules: streaming analysis modules on epoch reports.
//
//   $ ./epoch_modules [epochs]
//
// The module layer in one screen: build a FlowMonitor, attach the built-in
// analysis modules through a ModuleHost, subscribe the host to rotate(),
// and replay a few measurement intervals of mixed traffic -- web elephants,
// DNS chatter, and one port-scanning source.  Every rotation fans the epoch
// report out to every module; at the end each module prints its answer
// (top ports with DISCO confidence intervals, application mix, scan
// suspects, heavy prefixes, ...).  docs/modules.md walks through writing a
// module of your own.
#include <cstdlib>
#include <iostream>
#include <utility>

#include "flowtable/monitor.hpp"
#include "modules/host.hpp"
#include "util/rng.hpp"

namespace {

using disco::flowtable::FiveTuple;

FiveTuple web_flow(std::uint32_t client, std::uint32_t server) {
  return FiveTuple{0x0a000000u + client, 0xc0a80000u + server,
                   static_cast<std::uint16_t>(1024 + client), 443, 6};
}

FiveTuple dns_flow(std::uint32_t client) {
  return FiveTuple{0x0a000000u + client, 0x08080808u,
                   static_cast<std::uint16_t>(30000 + client), 53, 17};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 4;

  flowtable::FlowMonitor monitor({.max_flows = 16384,
                                  .counter_bits = 12,
                                  .max_flow_bytes = 1 << 28,
                                  .seed = 20100621});

  // The host owns the modules and relays every rotation to them.
  modules::ModuleOptions options;
  options.top_k = 5;
  options.scanner_min_fanout = 50;
  modules::ModuleHost host;
  for (auto& module : modules::make_modules("all", options)) {
    host.attach(std::move(module));
  }
  host.subscribe_to(monitor);

  util::Rng rng(7);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // A few heavy web servers: most bytes concentrate on servers 1 and 2.
    for (int i = 0; i < 20000; ++i) {
      const auto client = static_cast<std::uint32_t>(rng.uniform_u64(0, 99));
      const auto server =
          static_cast<std::uint32_t>(rng.uniform_u64(0, 9) == 0 ? 2 : 1);
      monitor.ingest(web_flow(client, server),
                     static_cast<std::uint32_t>(rng.uniform_u64(400, 1500)));
    }
    // Light DNS background.
    for (int i = 0; i < 2000; ++i) {
      const auto client = static_cast<std::uint32_t>(rng.uniform_u64(0, 99));
      monitor.ingest(dns_flow(client), 80);
    }
    // One source sweeping a /24: high fanout, one packet per target.
    for (std::uint32_t target = 0; target < 200; ++target) {
      monitor.ingest(FiveTuple{0x0adead01u, 0xc0a86400u + target, 40000,
                               static_cast<std::uint16_t>(1000 + target), 6},
                     60);
    }
    const auto report = monitor.rotate();  // fans out to every module
    std::cout << "rotated epoch " << report.epoch << ": "
              << report.totals.flows << " flows, " << report.totals.bytes
              << " estimated bytes\n";
  }

  host.flush();
  std::cout << '\n';
  host.export_text(std::cout);
  std::cout << "\nas JSON:\n" << host.export_json() << '\n';
  return 0;
}
