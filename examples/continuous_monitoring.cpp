// continuous_monitoring: measurement epochs plus checkpoint/restore -- the
// operational lifecycle of a deployed monitor.
//
//   $ ./continuous_monitoring [epochs]
//
// Simulates a monitor running across several measurement intervals: each
// epoch ingests fresh traffic, exports a per-flow report, and rotates; in
// the middle of one epoch the monitor is snapshotted to disk and restored,
// demonstrating that monitoring resumes bit-exactly after a restart.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "flowtable/monitor.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"

namespace {

disco::flowtable::FiveTuple tuple_for(std::uint32_t flow_id, std::uint64_t epoch) {
  // Different epochs see (mostly) different flow populations, as real
  // measurement intervals do.
  return disco::flowtable::FiveTuple{
      0x0a000000u + flow_id + static_cast<std::uint32_t>(epoch) * 1000u,
      0xc0a80101u, static_cast<std::uint16_t>(1024 + flow_id), 443, 6};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 3;

  flowtable::FlowMonitor monitor({.max_flows = 8192,
                                  .counter_bits = 12,
                                  .max_flow_bytes = 1 << 28,
                                  .max_flow_packets = 1 << 20,
                                  .seed = 20100621});  // ICDCS'10 in Genova

  util::Rng traffic_rng(17);
  stats::TextTable summary({"epoch", "flows", "packets", "est. bytes",
                            "heaviest flow (est. B)"});

  for (int e = 0; e < epochs; ++e) {
    auto flows = trace::scenario1().make_flows(600, traffic_rng);
    trace::PacketStream stream(std::move(flows), 1, 8, 100 + e);
    std::uint64_t mid = stream.total_packets() / 2;
    std::uint64_t n = 0;
    while (auto p = stream.next()) {
      (void)monitor.ingest(tuple_for(p->flow_id, monitor.epoch()), p->length);
      // Mid-epoch restart drill in epoch 0: snapshot, drop, restore.
      if (e == 0 && ++n == mid) {
        std::stringstream checkpoint;
        monitor.snapshot(checkpoint);
        std::cout << "[epoch 0] snapshot taken at packet " << n << " ("
                  << checkpoint.str().size() << " bytes); restoring...\n";
        monitor = flowtable::FlowMonitor::restore(checkpoint);
      }
    }

    const auto report = monitor.rotate();
    double heaviest = 0.0;
    for (const auto& f : report.flows) heaviest = std::max(heaviest, f.bytes);
    summary.add_row({std::to_string(report.epoch),
                     std::to_string(report.flows.size()),
                     std::to_string(monitor.packets_seen()),
                     std::to_string(static_cast<std::uint64_t>(report.totals.bytes)),
                     std::to_string(static_cast<std::uint64_t>(heaviest))});
  }

  std::cout << '\n';
  summary.print(std::cout);
  std::cout << "\neach rotation exports the interval's per-flow estimates and\n"
               "frees the whole SRAM budget for the next interval; the\n"
               "mid-epoch restore shows state surviving a restart with the\n"
               "random stream position intact (see test_monitor_lifecycle\n"
               "for the bit-exactness proof).\n";
  return 0;
}
