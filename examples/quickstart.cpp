// Quickstart: the paper's Fig. 1 walkthrough, then the five-minute tour of
// the public API.
//
//   $ ./quickstart
//
// Part 1 replays the exact four-packet example from the paper's Fig. 1 and
// shows the discounted increments next to a full-size counter.
// Part 2 monitors a small synthetic workload end to end with FlowMonitor.
#include <cstdint>
#include <iostream>

#include "core/disco.hpp"
#include "flowtable/monitor.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

int main() {
  using namespace disco;

  // ---------------------------------------------------------------------
  // Part 1: discount counting on the paper's Fig. 1 packet sequence.
  // ---------------------------------------------------------------------
  std::cout << "== Part 1: Fig. 1 walkthrough ==\n";
  // Provision a 10-bit counter for flows up to 1 MB; b comes out near the
  // paper's operating range.
  const auto params = core::DiscoParams::for_budget(1 << 20, 10);
  std::cout << "provisioned base b = " << params.b() << "\n\n";

  util::Rng rng(2010);  // ICDCS 2010
  std::uint64_t counter = 0;
  std::uint64_t full_size = 0;
  std::cout << "packet  full-counter  disco-increment  disco-counter\n";
  for (std::uint64_t len : {81ull, 1420ull, 142ull, 691ull}) {
    const std::uint64_t before = counter;
    counter = params.update(counter, len, rng);
    full_size += len;
    std::cout << "  " << len << "\t " << full_size << "\t\t+" << (counter - before)
              << "\t\t " << counter << "\n";
  }
  std::cout << "\nfull-size counter value : " << full_size << "\n";
  std::cout << "DISCO counter value     : " << counter << "\n";
  std::cout << "compression ratio       : "
            << static_cast<double>(full_size) / static_cast<double>(counter)
            << "x\n";
  std::cout << "unbiased estimate f(c)  : " << params.estimate(counter)
            << "  (truth " << full_size << ")\n\n";

  // ---------------------------------------------------------------------
  // Part 2: FlowMonitor -- both flow volume and flow size from one budget.
  // ---------------------------------------------------------------------
  std::cout << "== Part 2: FlowMonitor on a synthetic workload ==\n";
  flowtable::FlowMonitor monitor({.max_flows = 4096,
                                  .counter_bits = 10,
                                  .max_flow_bytes = 1 << 26,
                                  .max_flow_packets = 1 << 16,
                                  .seed = 42});

  // Fabricate 200 flows from the paper's Scenario 1 and splay them over
  // synthetic 5-tuples.
  util::Rng traffic_rng(7);
  const auto scenario = trace::scenario1();
  const auto flows = scenario.make_flows(200, traffic_rng);
  std::uint64_t truth_bytes = 0;
  for (const auto& flow : flows) {
    const flowtable::FiveTuple tuple{0x0a000001u + flow.id, 0xc0a80001u,
                                     static_cast<std::uint16_t>(1024 + flow.id),
                                     443, 6};
    for (std::uint32_t len : flow.lengths) monitor.ingest(tuple, len);
    truth_bytes += flow.bytes();
  }

  const auto totals = monitor.totals();
  std::cout << "flows tracked      : " << totals.flows << "\n";
  std::cout << "packets ingested   : " << monitor.packets_seen() << "\n";
  std::cout << "estimated bytes    : " << static_cast<std::uint64_t>(totals.bytes)
            << "  (truth " << truth_bytes << ")\n";

  std::cout << "\ntop-3 flows by estimated volume:\n";
  for (const auto& flow : monitor.top_k(3)) {
    std::cout << "  src=" << std::hex << flow.flow.src_ip << std::dec
              << " port=" << flow.flow.src_port << "  ~"
              << static_cast<std::uint64_t>(flow.bytes) << " bytes, ~"
              << static_cast<std::uint64_t>(flow.packets) << " packets\n";
  }

  const auto memory = monitor.memory();
  std::cout << "\nmemory budget (bits): volume=" << memory.volume_counter_bits
            << " size=" << memory.size_counter_bits
            << " table=" << memory.flow_table_bits << " total=" << memory.total()
            << " (" << memory.total() / 8192 << " KiB)\n";
  return 0;
}
