// flow_monitor: an end-to-end monitoring appliance on a synthetic link.
//
//   $ ./flow_monitor [flow_count] [seed]
//
// Generates Internet-like traffic (the real-trace model), streams it through
// a FlowMonitor with interleaved arrival order, and then plays the operator:
// periodic top-k reports, per-flow queries, an offline pass over the saved
// trace to validate the on-line estimates, and a memory bill.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "flowtable/monitor.hpp"
#include "stats/error.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace {

disco::flowtable::FiveTuple tuple_for(std::uint32_t flow_id) {
  // Spread synthetic flows over plausible address space.
  return disco::flowtable::FiveTuple{
      0x0a000000u + (flow_id * 2654435761u) % 65536, 0xc6336401u + flow_id % 256,
      static_cast<std::uint16_t>(1024 + flow_id % 50000),
      static_cast<std::uint16_t>(flow_id % 2 ? 443 : 80),
      static_cast<std::uint8_t>(flow_id % 5 ? 6 : 17)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const std::uint32_t flow_count =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // --- generate traffic and keep ground truth for the final audit ---------
  util::Rng rng(seed);
  auto flows = trace::real_trace_model().make_flows(flow_count, rng);
  const auto truths = trace::flow_truths(flows);
  const auto summary = trace::summarize(flows);
  std::cout << "link workload: " << summary.flow_count << " flows, "
            << summary.total_packets << " packets, " << summary.total_bytes
            << " bytes\n\n";

  // --- the monitoring component -------------------------------------------
  flowtable::FlowMonitor monitor({.max_flows = flow_count * 2,
                                  .counter_bits = 12,
                                  .max_flow_bytes = 4 * summary.max_flow_bytes,
                                  .max_flow_packets = 4 * summary.max_flow_packets,
                                  .seed = seed ^ 0xD15C0});

  trace::PacketStream stream(flows, 1, 8, seed + 1);
  std::vector<trace::PacketRecord> archive;
  archive.reserve(stream.total_packets());
  std::uint64_t processed = 0;
  const std::uint64_t report_every = std::max<std::uint64_t>(1, stream.total_packets() / 3);
  while (auto p = stream.next()) {
    if (!monitor.ingest(tuple_for(p->flow_id), p->length)) {
      std::cerr << "flow table full; packet dropped from accounting\n";
    }
    archive.push_back(*p);
    if (++processed % report_every == 0) {
      std::cout << "after " << processed << " packets, top-3 flows by volume:\n";
      for (const auto& f : monitor.top_k(3)) {
        std::cout << "  " << std::hex << f.flow.src_ip << std::dec << ":"
                  << f.flow.src_port << " -> ~"
                  << static_cast<std::uint64_t>(f.bytes) << " B, ~"
                  << static_cast<std::uint64_t>(f.packets) << " pkts\n";
      }
    }
  }

  // --- audit: compare on-line estimates against exact offline accounting --
  // The archive round-trips through the binary trace format, demonstrating
  // the offline half of the pipeline.
  std::stringstream trace_store;
  trace::write_trace(trace_store, archive, flow_count);
  const auto reloaded = trace::read_trace(trace_store);
  const auto offline = trace::truths_from_packets(reloaded.packets, flow_count);

  std::vector<double> est_bytes(flow_count);
  std::vector<std::uint64_t> true_bytes(flow_count);
  std::vector<double> est_pkts(flow_count);
  std::vector<std::uint64_t> true_pkts(flow_count);
  for (std::uint32_t id = 0; id < flow_count; ++id) {
    const auto q = monitor.query(tuple_for(id));
    est_bytes[id] = q ? q->bytes : 0.0;
    est_pkts[id] = q ? q->packets : 0.0;
    true_bytes[id] = offline[id].bytes;
    true_pkts[id] = offline[id].packets;
  }
  const auto byte_err = stats::relative_error_report(est_bytes, true_bytes);
  const auto pkt_err = stats::relative_error_report(est_pkts, true_pkts);

  stats::TextTable audit({"metric", "volume (bytes)", "size (packets)"});
  audit.add_row({"average relative error", stats::fmt(byte_err.average),
                 stats::fmt(pkt_err.average)});
  audit.add_row({"0.95-optimistic error", stats::fmt(byte_err.optimistic95),
                 stats::fmt(pkt_err.optimistic95)});
  audit.add_row({"maximum relative error", stats::fmt(byte_err.maximum),
                 stats::fmt(pkt_err.maximum)});
  std::cout << '\n';
  audit.print(std::cout);

  const auto memory = monitor.memory();
  std::cout << "\nmemory bill: counters "
            << (memory.volume_counter_bits + memory.size_counter_bits) / 8192
            << " KiB, flow table " << memory.flow_table_bits / 8192
            << " KiB; mean probe length "
            << stats::fmt(monitor.table().mean_probe_length(), 2) << "\n";
  std::cout << "an exact 64-bit-counter deployment would need "
            << (flow_count * 2 * 128) / 8192
            << " KiB of counters for the same slots.\n";
  return 0;
}
