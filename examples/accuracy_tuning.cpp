// accuracy_tuning: the operator's provisioning worksheet.
//
//   $ ./accuracy_tuning [max_flow_bytes]
//
// Given the largest flow a deployment must represent, sweep the counter-bit
// budget and print: the base b DISCO derives, the theoretical error bound
// (Corollary 1), the measured average error on heavy-tailed traffic, and the
// SRAM cost per 100k flows -- everything needed to pick a configuration.
#include <cstdlib>
#include <iostream>

#include "core/disco.hpp"
#include "core/theory.hpp"
#include "stats/experiment.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace disco;
  const std::uint64_t max_flow =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (std::uint64_t{1} << 32);

  std::cout << "provisioning DISCO for flows up to " << max_flow << " bytes\n\n";

  util::Rng rng(4242);
  const auto flows = trace::real_trace_model().make_flows(1200, rng);

  stats::TextTable table({"bits", "base b", "error bound", "measured avg R",
                          "measured R_o(0.95)", "SRAM per 100k flows"});
  for (int bits = 6; bits <= 16; bits += 2) {
    const double b = util::choose_b(max_flow, bits);
    const auto method = stats::make_method("DISCO");
    // Measure on the workload, but provision for the requested max_flow so
    // the printed row reflects the configuration being sized.
    method->prepare(flows.size(), bits, max_flow);
    util::Rng update_rng(bits);
    std::vector<double> estimates(flows.size());
    std::vector<std::uint64_t> truths(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      for (auto l : flows[i].lengths) method->add(i, l, update_rng);
      estimates[i] = method->estimate(i);
      truths[i] = flows[i].bytes();
    }
    const auto report = stats::relative_error_report(estimates, truths);
    const std::size_t kib = (100000ull * static_cast<std::size_t>(bits)) / 8192;
    table.add_row({std::to_string(bits), stats::fmt(b, 6),
                   stats::fmt(core::theory::cv_bound(b), 4),
                   stats::fmt(report.average, 4),
                   stats::fmt(report.optimistic95, 4),
                   std::to_string(kib) + " KiB"});
  }
  table.print(std::cout);

  std::cout << "\nreading the table: each +2 bits roughly halves both the\n"
               "bound and the measured error; the bound (Corollary 1) is the\n"
               "worst case over flow lengths, so measured averages sit below\n"
               "it.  Pick the first row whose R_o(0.95) meets your SLA.\n";
  return 0;
}
