// distributed_aggregation: merging DISCO counters across monitoring points.
//
//   $ ./distributed_aggregation [taps]
//
// A flow's packets often cross several taps (ECMP paths, mirrored links,
// per-core shards).  DISCO counters of the same deployment merge in f-space
// -- merge(c1, c2) estimates the union traffic unbiasedly -- so each tap
// keeps its own small counter and a collector folds them together without
// ever touching full-size counters.  This example splits traffic across N
// taps, aggregates, and compares against centralised counting and exact
// truth, with Theorem 2 confidence intervals on the result.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/disco.hpp"
#include "stats/table.hpp"
#include "util/histogram.hpp"
#include "trace/synthetic.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace disco;
  const int taps = argc > 1 ? std::atoi(argv[1]) : 4;
  if (taps < 1 || taps > 64) {
    std::cerr << "taps must be in [1, 64]\n";
    return 2;
  }

  const auto params = core::DiscoParams::for_budget(std::uint64_t{1} << 30, 12);
  util::Rng traffic_rng(31);
  util::Rng rng(32);
  const auto flows = trace::real_trace_model().make_flows(400, traffic_rng);

  std::cout << "flows: " << flows.size() << ", taps: " << taps
            << ", 12-bit counters, b = " << stats::fmt(params.b(), 5) << "\n\n";

  util::StreamingStats merged_err;
  util::StreamingStats central_err;
  stats::TextTable sample({"flow", "truth (B)", "merged estimate", "95% CI",
                           "central estimate"});
  for (const auto& flow : flows) {
    // Each packet takes one of `taps` paths (hash by arrival index).
    std::vector<std::uint64_t> tap_counter(static_cast<std::size_t>(taps), 0);
    std::uint64_t central = 0;
    for (std::size_t i = 0; i < flow.lengths.size(); ++i) {
      auto& c = tap_counter[i % static_cast<std::size_t>(taps)];
      c = params.update(c, flow.lengths[i], rng);
      central = params.update(central, flow.lengths[i], rng);
    }
    std::uint64_t merged = 0;
    for (auto c : tap_counter) merged = params.merge(merged, c, rng);

    const double truth = static_cast<double>(flow.bytes());
    if (truth == 0.0) continue;
    merged_err.add(util::relative_error(params.estimate(merged), truth));
    central_err.add(util::relative_error(params.estimate(central), truth));

    if (flow.id < 5) {
      const auto ci = params.confidence_interval(merged, 0.95);
      // Built with append rather than "literal" + rvalue-string operator+:
      // gcc 12's -Wrestrict false-positives on that overload (PR105651).
      std::string interval = "[";
      interval.append(stats::fmt(ci.low, 0))
          .append(", ")
          .append(stats::fmt(ci.high, 0))
          .append("]");
      sample.add_row({std::to_string(flow.id),
                      std::to_string(flow.bytes()),
                      stats::fmt(ci.estimate, 0),
                      interval,
                      stats::fmt(params.estimate(central), 0)});
    }
  }
  sample.print(std::cout);

  std::cout << "\naverage relative error, merged across " << taps
            << " taps : " << stats::fmt(merged_err.mean(), 4)
            << "\naverage relative error, centralised        : "
            << stats::fmt(central_err.mean(), 4)
            << "\n\nmerging costs only the merge-step variance (one discounted\n"
               "update per tap) -- and the merged estimate is typically MORE\n"
               "accurate than centralised counting: the taps' estimation\n"
               "errors are independent and average out in the sum, cutting\n"
               "the coefficient of variation by ~sqrt(taps).  Distributed\n"
               "DISCO is both cheap and statistically free.\n";
  return 0;
}
