// distributed_aggregation: N monitors, one answer, through the collector.
//
//   $ ./distributed_aggregation [taps]
//
// A flow's packets often cross several taps (ECMP paths, mirrored links,
// per-core shards).  Each tap runs its own FlowMonitor over the slice it
// sees; the aggregation tier (src/collect, docs/collector.md) merges their
// epoch reports into one global view.  This example builds that pipeline
// end to end *in process*: tap monitors ingest disjoint slices, their
// reports round-trip through the DRPT v3 wire format exactly as they would
// over a spool file or socket, and a Collector fuses them -- unbiased
// cross-site sums with pooled-variance Theorem 2 intervals.  A centralised
// monitor over the whole stream and the exact per-flow truth calibrate the
// result.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "collect/collector.hpp"
#include "flowtable/monitor.hpp"
#include "flowtable/report_io.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "util/histogram.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

/// Deterministic dense-id-to-5-tuple mapping (same scheme as the tools), so
/// merged keys relate back to trace flow ids.
disco::flowtable::FiveTuple tuple_for_flow(std::uint32_t flow_id) {
  disco::flowtable::FiveTuple t;
  t.src_ip = 0x0a000000u | flow_id;
  t.dst_ip = 0xc0a80001u;
  t.src_port = static_cast<std::uint16_t>(1024 + (flow_id & 0x7fff));
  t.dst_port = 443;
  t.protocol = 6;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const int taps = argc > 1 ? std::atoi(argv[1]) : 4;
  if (taps < 1 || taps > 64) {
    std::cerr << "taps must be in [1, 64]\n";
    return 2;
  }
  const auto n_taps = static_cast<std::size_t>(taps);

  util::Rng traffic_rng(31);
  const auto flows = trace::real_trace_model().make_flows(400, traffic_rng);

  // One 12-bit monitor per tap, plus a centralised reference monitor that
  // sees every packet.  Distinct seeds: the taps' estimation errors must be
  // independent for the pooled-variance interval to be honest.
  flowtable::FlowMonitor::Config config;
  config.max_flows = 4096;
  config.counter_bits = 12;
  std::vector<std::unique_ptr<flowtable::FlowMonitor>> tap_monitors;
  for (std::size_t tap = 0; tap < n_taps; ++tap) {
    config.seed = 100 + tap;
    tap_monitors.push_back(std::make_unique<flowtable::FlowMonitor>(config));
  }
  config.seed = 99;
  flowtable::FlowMonitor central(config);

  // Each packet takes one of `taps` paths (hash by arrival index).
  std::map<std::uint32_t, double> truth;
  for (const auto& flow : flows) {
    const auto key = tuple_for_flow(flow.id);
    for (std::size_t i = 0; i < flow.lengths.size(); ++i) {
      tap_monitors[i % n_taps]->ingest(key, flow.lengths[i]);
      central.ingest(key, flow.lengths[i]);
    }
    truth[flow.id] += static_cast<double>(flow.bytes());
  }

  // Ship each tap's epoch report to the collector through the real DRPT v3
  // wire format -- the same bytes a spool file or socket would carry.
  collect::Collector collector({.confidence = 0.95});
  for (std::uint32_t tap = 0; tap < static_cast<std::uint32_t>(taps); ++tap) {
    collector.expect_site(tap);
  }
  for (std::uint32_t tap = 0; tap < static_cast<std::uint32_t>(taps); ++tap) {
    std::stringstream wire;
    flowtable::write_report(wire, tap_monitors[tap]->rotate(), tap);
    flowtable::ReportReader reader(wire);
    while (auto item = reader.next()) {
      (void)collector.ingest(item->site_id, item->version, item->report);
    }
  }
  collector.finalize_all();

  std::map<std::uint32_t, double> central_estimate;
  for (const auto& est : central.rotate().flows) {
    central_estimate[est.flow.src_ip & 0x00ffffffu] = est.bytes;
  }

  const auto totals = collector.totals();
  std::cout << "flows: " << flows.size() << ", taps: " << taps
            << ", 12-bit counters, merged volume b = "
            << stats::fmt(collector.volume_b(), 5) << "\n"
            << "collector: " << collector.reports_ingested() << " reports, "
            << collector.epochs_finalized() << " epoch(s), "
            << collector.tracked_flows() << " tracked flows\n\n";

  util::StreamingStats merged_err;
  util::StreamingStats central_err;
  std::size_t covered = 0;
  stats::TextTable sample({"flow", "truth (B)", "merged estimate", "95% CI",
                           "sites", "central estimate"});
  for (const auto& est : collector.top_k(flows.size())) {
    const std::uint32_t flow_id = est.flow.src_ip & 0x00ffffffu;
    const double true_bytes = truth.at(flow_id);
    if (true_bytes == 0.0) continue;
    merged_err.add(util::relative_error(est.bytes, true_bytes));
    central_err.add(util::relative_error(central_estimate[flow_id],
                                         true_bytes));
    if (est.interval_valid && est.bytes_low <= true_bytes &&
        true_bytes <= est.bytes_high) {
      ++covered;
    }
    if (flow_id < 5) {
      // Built with append rather than "literal" + rvalue-string operator+:
      // gcc 12's -Wrestrict false-positives on that overload (PR105651).
      std::string interval = "[";
      interval.append(stats::fmt(est.bytes_low, 0))
          .append(", ")
          .append(stats::fmt(est.bytes_high, 0))
          .append("]");
      sample.add_row({std::to_string(flow_id), stats::fmt(true_bytes, 0),
                      stats::fmt(est.bytes, 0), interval,
                      std::to_string(est.sites),
                      stats::fmt(central_estimate[flow_id], 0)});
    }
  }
  sample.print(std::cout);

  std::cout << "\nglobal bytes: " << stats::fmt(totals.bytes, 0) << " in ["
            << stats::fmt(totals.bytes_low, 0) << ", "
            << stats::fmt(totals.bytes_high, 0) << "]"
            << "\naverage relative error, merged across " << taps
            << " taps : " << stats::fmt(merged_err.mean(), 4)
            << "\naverage relative error, centralised        : "
            << stats::fmt(central_err.mean(), 4)
            << "\n95% interval coverage over per-flow truth   : " << covered
            << "/" << merged_err.count()
            << "\n\nthe merged estimate is typically MORE accurate than\n"
               "centralised counting: the taps' estimation errors are\n"
               "independent and average out in the sum, and the collector's\n"
               "pooled-variance intervals say so -- each flow's interval\n"
               "narrows by ~sqrt(sites) relative to a single counter of the\n"
               "same total.  Distributed DISCO is both cheap and\n"
               "statistically free (docs/collector.md has the math).\n";
  return 0;
}
