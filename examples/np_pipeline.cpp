// np_pipeline: drive the simulated IXP2850 test-bench from the command line.
//
//   $ ./np_pipeline [num_mes] [burst_hi] [aggregate 0|1] [trace.dtrc]
//
// Runs the paper's Section VI setup -- TGEN MEs feeding packet handlers
// through the scratchpad ring into DISCO MEs with a shared 96 Kb Log&Exp
// table -- and prints the throughput/error/utilisation the hardware
// experiment reports.  With a fourth argument, replays a stored trace (from
// disco_tracegen) through the NP model instead of the synthetic pattern.
#include <cstdlib>
#include <iostream>

#include "sim/np_system.hpp"
#include "stats/table.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace disco;
  sim::NpConfig config;
  config.num_mes = argc > 1 ? std::atoi(argv[1]) : 1;
  config.burst_hi = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1;
  config.burst_aggregation = argc > 3 && std::atoi(argv[3]) != 0;
  config.flow_count = 2560;
  config.mean_packets = 400.0;

  std::cout << "simulated IXP2850: " << config.num_mes << " MicroEngine(s), "
            << "burst 1-" << config.burst_hi << ", on-chip aggregation "
            << (config.burst_aggregation ? "on" : "off") << "\n";

  sim::NpResult r;
  if (argc > 4) {
    const auto data = trace::read_trace_file(argv[4]);
    std::cout << "traffic: replaying " << data.packets.size()
              << " packets / " << data.flow_count << " flows from " << argv[4]
              << "\n\n";
    r = sim::run_np_simulation_on_trace(config, data.packets, data.flow_count);
  } else {
    std::cout << "traffic: " << config.flow_count
              << " flows (80/20 volume split), packet lengths 64 B - 1 KB\n\n";
    r = sim::run_np_simulation(config);
  }

  stats::TextTable table({"metric", "value"});
  table.add_row({"packets processed", std::to_string(r.packets)});
  table.add_row({"bytes processed", std::to_string(r.bytes)});
  table.add_row({"makespan", stats::fmt(static_cast<double>(r.makespan_ns) / 1e6, 2) + " ms"});
  table.add_row({"throughput", stats::fmt(r.throughput_gbps, 2) + " Gbps"});
  table.add_row({"avg relative error", stats::fmt(r.avg_relative_error, 4)});
  table.add_row({"SRAM counter updates", std::to_string(r.sram_updates)});
  table.add_row({"SRAM channel utilisation", stats::fmt(r.sram_utilization, 3)});
  table.add_row({"ring utilisation", stats::fmt(r.ring_utilization, 3)});
  table.add_row({"Log&Exp table",
                 std::to_string(r.table_storage_bits / 1024) + " Kb on-chip"});
  table.print(std::cout);

  std::cout << "\npaper reference (Table V): one ME reaches 11.1 Gbps at\n"
               "burst 1; bursts 1-8 with aggregation reach 28.6 Gbps with\n"
               "half the error; scaling in MEs is near-linear.\n";
  return 0;
}
