// Ablation: where does the simulated NP bottleneck move?  Sweeps MEs x SRAM
// channels under the worst-case traffic (all 64 B packets, burst 1) where
// per-packet compute is cheapest relative to SRAM work, and under the
// Table V pattern.  Shows the design headroom behind the paper's claim that
// 8 MEs reach 10 Gbps even in the worst case.
#include <iostream>

#include "bench_common.hpp"
#include "sim/np_system.hpp"

int main() {
  using namespace disco;
  bench::print_title("NP resource sweep: MEs x SRAM channels",
                     "extension of paper Table V / Section VI");

  sim::NpConfig base;
  base.flow_count = 1024;
  base.mean_packets = 150.0 * bench::scale();
  base.seed = 99;

  auto sweep = [&](const char* label, std::uint32_t len_lo, std::uint32_t len_hi) {
    std::cout << label << "\n";
    stats::TextTable table({"# ME", "1 channel", "2 channels", "4 channels"});
    for (int mes : {1, 8, 16, 32, 64}) {
      std::vector<std::string> row = {std::to_string(mes)};
      for (int channels : {1, 2, 4}) {
        sim::NpConfig c = base;
        c.num_mes = mes;
        c.sram_channels = channels;
        c.len_lo = len_lo;
        c.len_hi = len_hi;
        const sim::NpResult r = sim::run_np_simulation(c);
        row.push_back(stats::fmt(r.throughput_gbps, 1) + "Gbps");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  };

  sweep("Table V pattern (64 B - 1 KB packets):", 64, 1024);
  sweep("worst case (all 64 B packets):", 64, 64);

  std::cout <<
      "the bottleneck cascades: at low ME counts the ME compute budget\n"
      "dominates and extra channels buy nothing; past ~16 MEs the single\n"
      "SRAM channel saturates and a second channel is the difference\n"
      "between plateauing and scaling; past that, the scratchpad ring's\n"
      "issue rate becomes the ceiling (the 2- and 4-channel columns\n"
      "coincide).  This is the provisioning calculus behind the paper's\n"
      "worst-case remark that 8 MEs suffice for 10 Gbps.\n";
  return 0;
}
