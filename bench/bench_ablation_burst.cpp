// Ablation: burst length sweep beyond Table V -- how far does the Section VI
// on-chip aggregation optimisation carry as traffic burstiness grows, in
// both throughput and accuracy?
#include <iostream>

#include "bench_common.hpp"
#include "sim/np_system.hpp"

int main() {
  using namespace disco;
  bench::print_title("burst-aggregation sweep on the simulated IXP2850",
                     "extension of paper Table V / Section VI");

  sim::NpConfig base;
  base.flow_count = 1024;
  base.mean_packets = 200.0 * bench::scale();
  base.num_mes = 1;
  base.seed = 77;

  stats::TextTable table({"burst range", "aggregation", "throughput",
                          "avg rel error", "SRAM updates/pkt"});
  for (std::uint32_t burst_hi : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (bool aggregate : {false, true}) {
      sim::NpConfig c = base;
      c.burst_lo = 1;
      c.burst_hi = burst_hi;
      c.burst_aggregation = aggregate;
      const sim::NpResult r = sim::run_np_simulation(c);
      table.add_row({"1-" + std::to_string(burst_hi),
                     aggregate ? "on" : "off",
                     stats::fmt(r.throughput_gbps, 1) + "Gbps",
                     stats::fmt(r.avg_relative_error, 4),
                     stats::fmt(static_cast<double>(r.sram_updates) /
                                    static_cast<double>(r.packets),
                                3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nwithout aggregation, burstiness changes nothing (every\n"
               "packet still costs one SRAM round trip).  with aggregation,\n"
               "throughput grows with burst length while error *falls*\n"
               "(larger effective theta, Theorem 2) -- the Section VI\n"
               "optimisation compounds with burstier traffic.\n";
  return 0;
}
