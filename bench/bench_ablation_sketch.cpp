// Ablation: table-less monitoring with DISCO sketch cells.
//
// Per-flow counters need a flow table; a Count-Min sketch does not, but its
// cells absorb many flows and therefore need the very wide counters DISCO
// compresses.  This bench compares, at matched TOTAL SRAM budgets:
//   * FlowMonitor-style per-flow DISCO counters + flow table,
//   * DiscoSketch (CMS with 12-bit DISCO cells),
//   * a conventional CMS with full-size 32-bit cells (same total bits =>
//     ~2.7x fewer cells => more collisions).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/disco_sketch.hpp"
#include "stats/experiment.hpp"
#include "util/math.hpp"

namespace {

// Plain CMS with exact cells, for the equal-budget comparison.
class ExactSketch {
 public:
  ExactSketch(std::size_t width, int depth, std::uint64_t seed)
      : width_(width), depth_(depth), seed_(seed),
        cells_(width * static_cast<std::size_t>(depth), 0) {}

  void add(std::uint64_t key, std::uint64_t l) {
    for (int row = 0; row < depth_; ++row) cells_[index(key, row)] += l;
  }
  [[nodiscard]] double estimate(std::uint64_t key) const {
    std::uint64_t best = ~std::uint64_t{0};
    for (int row = 0; row < depth_; ++row) {
      best = std::min(best, cells_[index(key, row)]);
    }
    return static_cast<double>(best);
  }

 private:
  [[nodiscard]] std::size_t index(std::uint64_t key, int row) const {
    std::uint64_t z = key ^ (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) ^ seed_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<std::size_t>(row) * width_ + z % width_;
  }

  std::size_t width_;
  int depth_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace

int main() {
  using namespace disco;
  bench::print_title("table-less monitoring: DISCO sketch cells",
                     "extension -- sketches are where wide counters hurt most");

  util::Rng rng(2046);
  const std::uint32_t flow_count = bench::scaled(3000);
  const auto flows = trace::real_trace_model().make_flows(flow_count, rng);
  bench::print_workload_summary("real-trace model", flows);

  // Budget: what the per-flow deployment's counters cost (12 bits/flow),
  // spent instead on sketch cells.
  const std::size_t budget_bits = flow_count * 12;
  const int depth = 3;
  const std::size_t disco_width = budget_bits / (12u * depth);
  const std::size_t exact_width = budget_bits / (32u * depth);
  std::cout << "total counter budget " << budget_bits << " bits -> "
            << disco_width << " DISCO cells/row vs " << exact_width
            << " exact 32-bit cells/row (depth " << depth << ")\n\n";

  // Per-flow DISCO (needs a flow table on top; counters alone shown here).
  const auto per_flow = stats::make_method("DISCO");
  const auto rd = stats::run_accuracy(*per_flow, flows,
                                      stats::CountingMode::kVolume, 12, 2046);

  core::DiscoSketch::Config config;
  config.width = disco_width;
  config.depth = depth;
  config.cell_bits = 12;
  config.max_cell_traffic = std::uint64_t{1} << 34;
  core::DiscoSketch disco_sketch(config);
  ExactSketch exact_sketch(exact_width, depth, 0x5ce7c4);
  for (const auto& f : flows) {
    for (auto l : f.lengths) {
      disco_sketch.add(f.id, l);
      exact_sketch.add(f.id, l);
    }
  }

  auto mean_err = [&](auto&& estimate) {
    double err = 0.0;
    std::size_t n = 0;
    for (const auto& f : flows) {
      if (f.bytes() == 0) continue;
      err += util::relative_error(estimate(f.id), static_cast<double>(f.bytes()));
      ++n;
    }
    return err / static_cast<double>(n);
  };
  const double err_sketch =
      mean_err([&](std::uint64_t id) { return disco_sketch.estimate(id); });
  const double err_exact =
      mean_err([&](std::uint64_t id) { return exact_sketch.estimate(id); });

  stats::TextTable table({"scheme", "flow table", "avg relative error",
                          "counter bits"});
  table.add_row({"per-flow DISCO (12b)", "required", stats::fmt(rd.errors.average, 3),
                 std::to_string(rd.storage_bits)});
  table.add_row({"DISCO sketch (12b cells)", "none", stats::fmt(err_sketch, 3),
                 std::to_string(disco_sketch.storage_bits())});
  table.add_row({"exact CMS (32b cells)", "none", stats::fmt(err_exact, 3),
                 std::to_string(exact_width * 32u * depth)});
  table.print(std::cout);

  std::cout <<
      "\nat equal counter budgets the DISCO-cell sketch fits ~2.7x more\n"
      "cells than a 32-bit CMS, diluting collisions enough to beat it --\n"
      "discount counting composes with sketches just as it does with a\n"
      "flow table.  Per-flow counters stay the accuracy king when a table\n"
      "is affordable; the sketch trades accuracy for zero per-flow state.\n";
  return 0;
}
