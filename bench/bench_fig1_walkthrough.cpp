// Fig. 1 reproduction: the discount-counting walkthrough on the paper's
// four-packet trace segment (81, 1420, 142, 691 bytes), shown across several
// provisioning points plus the average compression over many trials.
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "core/disco.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

int main() {
  using namespace disco;
  bench::print_title("DISCO counting walkthrough", "paper Fig. 1");

  const std::vector<std::uint64_t> packets = {81, 1420, 142, 691};
  const std::uint64_t truth = 2334;

  // Single illustrative run, b provisioned as in the quickstart.
  const auto params = core::DiscoParams::for_budget(1 << 20, 10);
  util::Rng rng(2010);
  stats::TextTable table({"packet(B)", "full-size counter", "DISCO increment",
                          "DISCO counter", "estimate f(c)"});
  std::uint64_t c = 0;
  std::uint64_t full = 0;
  for (std::uint64_t l : packets) {
    const std::uint64_t before = c;
    c = params.update(c, l, rng);
    full += l;
    // std::string("+").append(...) instead of "+" + rvalue-string: gcc 12's
    // -Wrestrict false-positives on that operator+ overload (PR105651).
    table.add_row({std::to_string(l), std::to_string(full),
                   std::string("+").append(std::to_string(c - before)),
                   std::to_string(c), stats::fmt(params.estimate(c), 1)});
  }
  table.print(std::cout);
  std::cout << "\npaper reports increments +59 +220 +9 +33 -> counter 321 "
               "(compression 2334/321 = 7.3x)\n";
  std::cout << "this run:  counter " << c << " (compression "
            << stats::fmt(static_cast<double>(truth) / static_cast<double>(c), 2)
            << "x)\n\n";

  // Average compression and estimate over many trials, several budgets.
  stats::TextTable avg({"counter bits", "base b", "mean counter",
                        "mean estimate", "mean compression"});
  for (int bits : {8, 10, 12}) {
    const auto p = core::DiscoParams::for_budget(1 << 20, bits);
    util::Rng trial_rng(42);
    const int runs = 20000;
    double sum_c = 0.0;
    double sum_est = 0.0;
    for (int r = 0; r < runs; ++r) {
      std::uint64_t cc = 0;
      for (std::uint64_t l : packets) cc = p.update(cc, l, trial_rng);
      sum_c += static_cast<double>(cc);
      sum_est += p.estimate(cc);
    }
    avg.add_row({std::to_string(bits), stats::fmt(p.b(), 5),
                 stats::fmt(sum_c / runs, 1), stats::fmt(sum_est / runs, 1),
                 stats::fmt(static_cast<double>(truth) / (sum_c / runs), 2) + "x"});
  }
  avg.print(std::cout);
  std::cout << "\nmean estimate ~ " << truth
            << " at every budget: the estimator is unbiased (Theorem 1).\n";
  return 0;
}
