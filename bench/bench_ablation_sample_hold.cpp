// Ablation: DISCO vs the sampling-family baselines the paper's related-work
// section surveys -- Sample-and-Hold (ref. [7]) and Adaptive NetFlow / BNF
// (ref. [6]) -- on one heavy-tailed workload.
//
// Three philosophies of the same SRAM budget:
//   * Sample-and-Hold: ignore mice, count elephants near-exactly;
//   * Adaptive NetFlow: uniform packet sampling whose rate degrades (with
//     renormalisation stalls) as the flow population grows;
//   * DISCO: every flow gets a small counter with uniform bounded relative
//     error and no renormalisation, ever.
#include <iostream>

#include "bench_common.hpp"
#include "counters/adaptive_netflow.hpp"
#include "counters/sample_hold.hpp"
#include "stats/experiment.hpp"
#include "util/math.hpp"

int main() {
  using namespace disco;
  bench::print_title("DISCO vs Sample-and-Hold vs Adaptive NetFlow",
                     "paper references [6], [7] (related-work baselines)");

  util::Rng rng(1606);
  const std::uint32_t flow_count = bench::scaled(2000);
  const auto flows = trace::real_trace_model().make_flows(flow_count, rng);
  bench::print_workload_summary("real-trace model", flows);

  std::uint64_t total_bytes = 0;
  std::uint64_t max_flow = 1;
  for (const auto& f : flows) {
    total_bytes += f.bytes();
    max_flow = std::max(max_flow, f.bytes());
  }
  const std::uint64_t elephant_threshold = total_bytes / 1000;  // 0.1%
  std::cout << '\n';

  // --- DISCO: per-flow 12-bit counters --------------------------------------
  const auto disco_method = stats::make_method("DISCO");
  const auto rd = stats::run_accuracy(*disco_method, flows,
                                      stats::CountingMode::kVolume, 12, 1606);

  // --- Sample-and-Hold: rate chosen so expected held flows ~ flow count ----
  const double sh_rate = 1.0 / (static_cast<double>(total_bytes) /
                                static_cast<double>(flow_count) / 4.0);
  std::vector<counters::SampleAndHold> sh(flows.size(),
                                          counters::SampleAndHold(sh_rate));
  util::Rng sh_rng(1607);
  for (const auto& f : flows) {
    for (auto l : f.lengths) sh[f.id].add(l, sh_rng);
  }

  // --- Adaptive NetFlow: entry budget equal to the flow count --------------
  counters::AdaptiveNetFlow::Config nf_config;
  nf_config.max_entries = flow_count / 2;  // pressure forces adaptation
  counters::AdaptiveNetFlow nf(nf_config);
  util::Rng nf_rng(1608);
  for (const auto& f : flows) {
    for (std::size_t p = 0; p < f.packets(); ++p) nf.add_packet(f.id, nf_rng);
  }

  // --- score: per-flow error on all flows and on elephants only -------------
  auto score = [&](auto&& estimate) {
    double err_all = 0.0;
    std::size_t n_all = 0;
    double err_eleph = 0.0;
    std::size_t n_eleph = 0;
    std::size_t invisible = 0;
    for (const auto& f : flows) {
      const double truth = static_cast<double>(f.bytes());
      if (truth == 0.0) continue;
      const double est = estimate(f);
      const double r = std::fabs(est - truth) / truth;
      err_all += r;
      ++n_all;
      if (est == 0.0) ++invisible;
      if (f.bytes() >= elephant_threshold) {
        err_eleph += r;
        ++n_eleph;
      }
    }
    struct Score {
      double avg_all;
      double avg_elephants;
      double invisible_share;
    };
    return Score{err_all / static_cast<double>(n_all),
                 n_eleph ? err_eleph / static_cast<double>(n_eleph) : 0.0,
                 static_cast<double>(invisible) / static_cast<double>(n_all)};
  };

  const auto s_disco = score([&](const trace::FlowRecord& f) {
    return rd.estimates[f.id];
  });
  const auto s_sh = score([&](const trace::FlowRecord& f) {
    return sh[f.id].estimate();
  });
  // ANF counts packets; scale to bytes via the flow's mean packet size for a
  // fair volume comparison (its native use is flow size counting).
  const auto s_nf = score([&](const trace::FlowRecord& f) {
    const double pkts = nf.estimate(f.id);
    const double mean_len = f.packets() == 0
                                ? 0.0
                                : static_cast<double>(f.bytes()) /
                                      static_cast<double>(f.packets());
    return pkts * mean_len;
  });

  stats::TextTable table({"method", "avg R (all flows)", "avg R (elephants)",
                          "invisible flows", "renormalisations"});
  table.add_row({"DISCO 12-bit", stats::fmt(s_disco.avg_all, 3),
                 stats::fmt(s_disco.avg_elephants, 3),
                 stats::fmt(s_disco.invisible_share * 100, 1) + "%", "0"});
  table.add_row({"Sample-and-Hold", stats::fmt(s_sh.avg_all, 3),
                 stats::fmt(s_sh.avg_elephants, 3),
                 stats::fmt(s_sh.invisible_share * 100, 1) + "%", "0"});
  table.add_row({"Adaptive NetFlow", stats::fmt(s_nf.avg_all, 3),
                 stats::fmt(s_nf.avg_elephants, 3),
                 stats::fmt(s_nf.invisible_share * 100, 1) + "%",
                 std::to_string(nf.renormalizations()) + " (" +
                     std::to_string(nf.renormalization_work()) + " entry ops)"});
  table.print(std::cout);

  std::cout <<
      "\nSample-and-Hold nails elephants but blinds itself to most flows;\n"
      "Adaptive NetFlow sees everything it sampled but pays rate decay and\n"
      "renormalisation stalls; DISCO alone bounds the error of EVERY flow\n"
      "from a fixed SRAM budget with no renormalisation -- the paper's case\n"
      "for discount counting in one table.\n";
  return 0;
}
