// Micro-benchmark: single-counter update throughput of every method, on an
// identical mixed-length packet stream.  Not a paper table -- this is the
// engineering view of the per-packet cost each scheme pays on a host CPU.
//
// Pass --telemetry to enable runtime telemetry and print the metric
// registry as JSON after the run (the monitor-path benches below populate
// ingest/eviction/shard counters and the probe-length histogram).  Without
// the flag telemetry stays runtime-disabled, so the counter micro-loops
// measure the same hot path as a build without instrumentation.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/additive.hpp"
#include "core/disco.hpp"
#include "core/disco_fixed.hpp"
#include "counters/anls.hpp"
#include "counters/sac.hpp"
#include "counters/sd.hpp"
#include "flowtable/flow_table.hpp"
#include "flowtable/monitor.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "pipeline/packet_ring.hpp"
#include "telemetry/metrics.hpp"
#include "util/log_table.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::uint64_t kMaxFlow = std::uint64_t{1} << 30;
constexpr int kBits = 12;

std::vector<std::uint32_t> packet_lengths() {
  std::vector<std::uint32_t> lens;
  disco::util::Rng rng(5);
  for (int i = 0; i < 4096; ++i) {
    lens.push_back(static_cast<std::uint32_t>(rng.uniform_u64(64, 1500)));
  }
  return lens;
}

void BM_DiscoDouble(benchmark::State& state) {
  const auto lens = packet_lengths();
  const disco::core::DiscoParams params(disco::util::choose_b(kMaxFlow, kBits));
  disco::util::Rng rng(1);
  std::uint64_t c = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    c = params.update(c, lens[i++ & 4095], rng);
    if (c > 3000) c = 0;  // stay in the operating range
    benchmark::DoNotOptimize(c);
  }
}

void BM_DiscoTable(benchmark::State& state) {
  // Same stream and loop as BM_DiscoDouble, with the precomputed
  // DecisionTable attached: update decisions are bit-identical, but j is
  // found by probe+gallop over cached doubles instead of log/exp/pow.
  const auto lens = packet_lengths();
  disco::core::DiscoParams params(disco::util::choose_b(kMaxFlow, kBits));
  params.attach_table((std::uint64_t{1} << kBits) - 1);
  disco::util::Rng rng(1);
  std::uint64_t c = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    c = params.update(c, lens[i++ & 4095], rng);
    if (c > 3000) c = 0;  // stay in the operating range
    benchmark::DoNotOptimize(c);
  }
}

void BM_DiscoArrayBatch(benchmark::State& state) {
  // The ingest-shaped workload: one add_batch over 512 counters per
  // iteration, table attached -- what FlowMonitor::ingest_batch pays per
  // counter once flow-table lookup is excluded.
  constexpr std::size_t kBatch = 512;
  const auto lens = packet_lengths();
  disco::core::DiscoArray array(
      kBatch, kBits, disco::core::DiscoParams::for_budget(kMaxFlow, kBits));
  array.attach_decision_table();
  std::vector<std::size_t> slots(kBatch);
  std::vector<std::uint64_t> batch_lens(kBatch);
  for (std::size_t s = 0; s < kBatch; ++s) {
    slots[s] = s;
    batch_lens[s] = lens[s & 4095];
  }
  disco::util::Rng rng(1);
  std::size_t items = 0;
  for (auto _ : state) {
    array.add_batch(slots, batch_lens, rng);
    items += kBatch;
    benchmark::DoNotOptimize(array);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}

void BM_DiscoFixedPoint(benchmark::State& state) {
  const auto lens = packet_lengths();
  disco::util::LogExpTable::Config config;
  config.b = disco::util::choose_b(kMaxFlow, kBits);
  const disco::util::LogExpTable table(config);
  const disco::core::FixedPointDisco logic(table);
  disco::util::Rng rng(1);
  std::uint64_t c = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    c = logic.update(c, lens[i++ & 4095], rng);
    if (c > 3000) c = 0;
    benchmark::DoNotOptimize(c);
  }
}

void BM_Sac(benchmark::State& state) {
  const auto lens = packet_lengths();
  disco::counters::SacArray sac(1, kBits);
  disco::util::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    sac.add(0, lens[i++ & 4095], rng);
    benchmark::DoNotOptimize(sac.estimation_part(0));
  }
}

void BM_AnlsII(benchmark::State& state) {
  const auto lens = packet_lengths();
  disco::counters::AnlsIICounter c(disco::util::choose_b(kMaxFlow, kBits));
  disco::util::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    c.add(lens[i++ & 4095], rng);
    benchmark::DoNotOptimize(c.value());
  }
}

void BM_SdExact(benchmark::State& state) {
  const auto lens = packet_lengths();
  disco::counters::SdArray sd(
      disco::counters::SdArray::Config{1024, 8, 10,
                                       disco::counters::SdArray::Cma::kLargestCounterFirst});
  disco::util::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    sd.add(i & 1023, lens[i & 4095]);
    ++i;
    benchmark::DoNotOptimize(sd.value(0));
  }
}

void BM_BurstAggregated(benchmark::State& state) {
  // DISCO behind a burst aggregator (8-packet bursts): the Section VI
  // fast path.
  const auto lens = packet_lengths();
  const disco::core::DiscoParams params(disco::util::choose_b(kMaxFlow, kBits));
  disco::core::BurstAggregator burst(params);
  disco::util::Rng rng(1);
  std::uint64_t c = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    burst.add(lens[i & 4095], c, rng);
    if ((++i & 7) == 0) burst.flush(c, rng);
    if (c > 3000) c = 0;
    benchmark::DoNotOptimize(c);
  }
}

std::vector<disco::flowtable::FiveTuple> sample_tuples(std::size_t n) {
  std::vector<disco::flowtable::FiveTuple> tuples(n);
  disco::util::Rng rng(11);
  for (auto& t : tuples) {
    t.src_ip = static_cast<std::uint32_t>(rng.next());
    t.dst_ip = static_cast<std::uint32_t>(rng.next());
    t.src_port = static_cast<std::uint16_t>(rng.uniform_u64(1024, 65535));
    t.dst_port = 443;
    t.protocol = 6;
  }
  return tuples;
}

// --- estimator A/B ----------------------------------------------------------
// DiscoArray vs AdditiveErrorArray on the identical slot/length stream --
// the per-update cost behind bench_pipeline's estimator ablation.  The
// additive array's occasional halve-all rescale walks are included (and
// amortised over the long benchmark loop, the regime the estimator is
// designed for; bench_pipeline's short windows show the other regime).

void BM_AdditiveArrayBatch(benchmark::State& state) {
  // Mirror of BM_DiscoArrayBatch: one add_batch-shaped pass over 512
  // counters per iteration, so the two numbers are directly comparable.
  constexpr std::size_t kBatch = 512;
  const auto lens = packet_lengths();
  disco::core::AdditiveErrorArray array(kBatch, kBits);
  disco::util::Rng rng(1);
  std::size_t items = 0;
  for (auto _ : state) {
    for (std::size_t s = 0; s < kBatch; ++s) {
      array.add(s, lens[s & 4095], rng);
    }
    items += kBatch;
    benchmark::DoNotOptimize(array);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.counters["rescales"] =
      static_cast<double>(array.rescale_count());
}

// --- tag-probe A/B ----------------------------------------------------------
// The SIMD group probe against the portable scalar byte loop, same template
// with the engine flipped (flowtable/tag_probe.hpp), on a table at the
// steady-state ~75% load factor.  On builds without SIMD both instances run
// the scalar engine and the ratio pins to ~1x.

template <bool UseSimd>
void BM_TagProbeFind(benchmark::State& state) {
  constexpr std::size_t kCapacity = 8192;
  disco::flowtable::BasicFlowTable<disco::flowtable::FiveTuple, UseSimd> table(
      kCapacity);
  const auto tuples = sample_tuples(8192);
  for (std::size_t i = 0; i < kCapacity * 3 / 4; ++i) {
    (void)table.insert_or_get(tuples[i]);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    // ~75% hits, 25% misses: misses walk to the group's first empty tag,
    // the probe pattern the fingerprint compare is built to shortcut.
    benchmark::DoNotOptimize(table.find(tuples[i & 8191]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

template <bool UseSimd>
void BM_TagProbeChurn(benchmark::State& state) {
  // Insert/erase churn at capacity: every erase backward-shifts a cluster,
  // every insert probes to a fresh slot -- the worst case for tag upkeep.
  constexpr std::size_t kCapacity = 4096;
  disco::flowtable::BasicFlowTable<disco::flowtable::FiveTuple, UseSimd> table(
      kCapacity);
  const auto tuples = sample_tuples(8192);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    (void)table.insert_or_get(tuples[i]);
  }
  std::size_t in = kCapacity, out = 0, ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.erase(tuples[out++ & 8191]));
    benchmark::DoNotOptimize(table.insert_or_get(tuples[in++ & 8191]));
    ops += 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void BM_TagProbeFindTelemetry(benchmark::State& state) {
  // BM_TagProbeFindSimd with runtime telemetry forced on, so the sampled
  // probe-length record (1 in 64 lookups, flow_table.hpp) actually fires
  // and pays record_slow's three relaxed fetch_adds.  The delta against
  // BM_TagProbeFindSimd is the observability cost left on the hot path
  // after sampling; docs/telemetry.md records the before/after numbers.
  const bool was = disco::telemetry::enabled();
  disco::telemetry::set_enabled(true);
  BM_TagProbeFind<disco::flowtable::tagprobe::kHaveSimd>(state);
  disco::telemetry::set_enabled(was);
}

// --- atomic-shim A/B --------------------------------------------------------
// SpscRing declares its indices through util::atomic (the model-check shim,
// src/util/atomic.hpp), which in a normal build static_asserts itself to be
// bare std::atomic.  This pair pins that claim empirically: the real ring
// against a verbatim copy of its push/pop protocol written directly on
// std::atomic.  bench_to_json.py derives `shim_overhead` from the ratio --
// it must hover at 1.0, or the shim stopped being free.  (bench/ sits
// outside lint_disco.py's src/ scan, so the deliberate raw std::atomic
// here needs no suppression.)

/// Byte-for-byte mirror of SpscRing<std::uint64_t>'s index protocol and
/// layout, with the shim aliases replaced by the raw standard types.
class RawSpscRing {
 public:
  explicit RawSpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {}

  bool try_push(std::uint64_t value) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t pop_batch(std::uint64_t* out, std::size_t max) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    std::size_t n = cached_tail_ - head;
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) out[i] = slots_[(head + i) & mask_];
    head_.store(head + n, std::memory_order_release);
    return n;
  }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<std::uint64_t> slots_;
  alignas(disco::pipeline::kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(disco::pipeline::kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(disco::pipeline::kCacheLine) std::size_t cached_head_ = 0;
  alignas(disco::pipeline::kCacheLine) std::size_t cached_tail_ = 0;
};

template <typename Ring>
void BM_SpscRingAB(benchmark::State& state) {
  // Single-threaded push-then-drain: identical op sequence on both rings
  // (relaxed own-index load, occasional acquire refresh, release store),
  // so any timing delta is the shim's.  One item in flight keeps the
  // cached-index shortcuts on their common path.
  Ring ring(256);
  std::uint64_t buf[8];
  std::uint64_t v = 0;
  std::size_t ops = 0;
  for (auto _ : state) {
    (void)ring.try_push(v++);
    benchmark::DoNotOptimize(ring.pop_batch(buf, 8));
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

// --- full monitor path ------------------------------------------------------
// Flow table lookup + volume update + size update per packet: what one
// ingest costs end to end, and the workload that feeds the telemetry
// snapshot (ingest/eviction counters, occupancy, probe-length histogram).

void BM_MonitorIngest(benchmark::State& state) {
  disco::flowtable::FlowMonitor monitor(
      {.max_flows = 8192, .counter_bits = kBits, .max_flow_bytes = kMaxFlow});
  const auto lens = packet_lengths();
  const auto tuples = sample_tuples(4096);
  std::uint64_t now_ns = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    now_ns += 1000;
    benchmark::DoNotOptimize(monitor.ingest(tuples[i & 4095], lens[i & 4095], now_ns));
    // Periodic idle eviction, as a monitoring appliance would run it; the
    // 2 ms timeout against the 4 ms tuple-cycle period guarantees churn.
    if ((++i & 0xffff) == 0) monitor.evict_idle(now_ns, 2'000'000);
  }
  // Evict the survivors so eviction totals are populated even on short runs.
  monitor.evict_idle(now_ns + 1'000'000, 0);
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_ShardedMonitorIngest(benchmark::State& state) {
  disco::flowtable::ShardedFlowMonitor monitor(
      {.base = {.max_flows = 8192, .counter_bits = kBits, .max_flow_bytes = kMaxFlow},
       .shards = 8});
  const auto lens = packet_lengths();
  const auto tuples = sample_tuples(4096);
  std::uint64_t now_ns = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    now_ns += 1000;
    benchmark::DoNotOptimize(monitor.ingest(tuples[i & 4095], lens[i & 4095], now_ns));
    ++i;
  }
  monitor.evict_idle(now_ns + 1'000'000, 0);
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

BENCHMARK(BM_DiscoDouble);
BENCHMARK(BM_DiscoTable);
BENCHMARK(BM_DiscoArrayBatch);
BENCHMARK(BM_DiscoFixedPoint);
BENCHMARK(BM_Sac);
BENCHMARK(BM_AnlsII);
BENCHMARK(BM_SdExact);
BENCHMARK(BM_BurstAggregated);
BENCHMARK(BM_AdditiveArrayBatch);
BENCHMARK(BM_TagProbeFind<true>)->Name("BM_TagProbeFindSimd");
BENCHMARK(BM_TagProbeFind<false>)->Name("BM_TagProbeFindScalar");
BENCHMARK(BM_TagProbeChurn<true>)->Name("BM_TagProbeChurnSimd");
BENCHMARK(BM_TagProbeChurn<false>)->Name("BM_TagProbeChurnScalar");
BENCHMARK(BM_TagProbeFindTelemetry);
BENCHMARK(BM_SpscRingAB<disco::pipeline::SpscRing<std::uint64_t>>)
    ->Name("BM_SpscRingShim");
BENCHMARK(BM_SpscRingAB<RawSpscRing>)->Name("BM_SpscRingRaw");
BENCHMARK(BM_MonitorIngest);
BENCHMARK(BM_ShardedMonitorIngest);

}  // namespace

int main(int argc, char** argv) {
  const bool telemetry = disco::bench::parse_telemetry_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (telemetry) disco::bench::dump_telemetry_snapshot();
  return 0;
}
