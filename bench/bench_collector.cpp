// Collector merge throughput: how fast the aggregation tier folds a
// fleet's epoch reports into the global view (src/collect/collector.hpp).
//
// The workload is the collector's worst case for key fusion: every site
// reports the SAME flow population, so each flow record lands in an
// existing MixedEstimateAccumulator pair.  Reports are pre-built outside
// the timed region; the measurement is ingest + epoch finalisation +
// subscriber emission, i.e. everything between "bytes parsed" and "global
// answer updated".  Best-of-3, like the other throughput benches: single
// runs are milliseconds at bench scale.
//
//   ./bench_collector [--json=PATH] [--telemetry]
//   DISCO_BENCH_SCALE=10 ./bench_collector       # ~10x flow population
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "collect/collector.hpp"

namespace {

using disco::collect::Collector;
using disco::collect::CollectorConfig;
using disco::collect::EpochReport;

disco::flowtable::FiveTuple tuple(std::uint32_t i) {
  return disco::flowtable::FiveTuple{0x0a000000u + i, 0xc0a80001u,
                                     static_cast<std::uint16_t>(i & 0x7fff),
                                     443, 6};
}

/// One site's report for one epoch: `flows` records over the shared key
/// population, with per-site error metadata.
EpochReport make_report(std::uint64_t epoch, std::uint32_t flows, double b) {
  EpochReport report;
  report.epoch = epoch;
  report.volume_b = b;
  report.size_b = b;
  report.flows.reserve(flows);
  for (std::uint32_t i = 0; i < flows; ++i) {
    const double bytes = 1000.0 + (i % 977);
    report.flows.push_back({tuple(i), bytes, 1.0 + (i % 13)});
    report.totals.bytes += bytes;
    report.totals.packets += 1.0 + (i % 13);
  }
  report.totals.flows = flows;
  return report;
}

struct Row {
  unsigned sites = 0;
  std::uint64_t reports = 0;
  std::uint64_t records = 0;
  double seconds = 0.0;
  double mrecs = 0.0;      ///< flow records merged per second, millions
  double reports_s = 0.0;  ///< whole reports per second
};

Row run_merge(unsigned sites, std::uint32_t epochs, std::uint32_t flows) {
  // Pre-build the whole fleet's report stream, epoch-major (the order a
  // round-robin spool drain or a healthy socket fleet delivers).
  std::vector<std::pair<std::uint32_t, const EpochReport*>> schedule;
  std::vector<std::vector<EpochReport>> reports(sites);
  for (unsigned site = 0; site < sites; ++site) {
    const double b = 1.002 + 0.001 * site;  // heterogeneous bases
    for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
      reports[site].push_back(make_report(epoch, flows, b));
    }
  }
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    for (unsigned site = 0; site < sites; ++site) {
      schedule.emplace_back(site, &reports[site][epoch]);
    }
  }

  Row best;
  for (int repeat = 0; repeat < 3; ++repeat) {
    Collector collector;
    for (unsigned site = 0; site < sites; ++site) collector.expect_site(site);
    std::uint64_t emitted = 0;
    collector.subscribe([&emitted](const EpochReport& r) {
      emitted += r.flows.size();  // realistic: someone consumes the merge
    });
    const auto start = std::chrono::steady_clock::now();
    for (const auto& [site, report] : schedule) {
      (void)collector.ingest(site, disco::flowtable::kReportVersion, *report);
    }
    collector.finalize_all();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    Row row;
    row.sites = sites;
    row.reports = schedule.size();
    row.records = static_cast<std::uint64_t>(schedule.size()) * flows;
    row.seconds = elapsed.count();
    row.mrecs = static_cast<double>(row.records) / elapsed.count() / 1e6;
    row.reports_s = static_cast<double>(row.reports) / elapsed.count();
    if (row.mrecs > best.mrecs) best = row;
  }
  return best;
}

std::string parse_json_flag(int* argc, char** argv) {
  std::string path;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const bool telemetry = bench::parse_telemetry_flag(&argc, argv);
  const std::string json_path = parse_json_flag(&argc, argv);
  bench::print_title("collector merge throughput",
                     "aggregation tier: fold a fleet's epoch reports into "
                     "the global top-k view");

  const auto flows = bench::scaled(20'000);
  constexpr std::uint32_t kEpochs = 8;
  std::cout << "workload: " << flows << " shared flows per report, "
            << kEpochs << " epochs, full cross-site key fusion\n\n";

  std::vector<Row> rows;
  stats::TextTable table(
      {"sites", "reports", "flow records", "Mrec/s", "reports/s"});
  for (unsigned sites : {2u, 4u, 8u}) {
    const Row row = run_merge(sites, kEpochs, flows);
    rows.push_back(row);
    table.add_row({std::to_string(row.sites), std::to_string(row.reports),
                   std::to_string(row.records), stats::fmt(row.mrecs, 2),
                   stats::fmt(row.reports_s, 0)});
  }
  table.print(std::cout);
  std::cout << "(every record updates two MixedEstimateAccumulators and the\n"
               "exact global totals; sites share one key population, so\n"
               "this is the fusion-heavy end of the merge cost range.)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"bench_collector\",\n"
        << "  \"scale\": " << bench::scale() << ",\n"
        << "  \"flows_per_report\": " << flows << ",\n"
        << "  \"epochs\": " << kEpochs << ",\n"
        << "  \"merge\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"sites\": " << r.sites << ", \"reports\": " << r.reports
          << ", \"flow_records\": " << r.records
          << ", \"mrecs_per_s\": " << r.mrecs
          << ", \"reports_per_s\": " << r.reports_s << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }

  if (telemetry) bench::dump_telemetry_snapshot();
  return 0;
}
