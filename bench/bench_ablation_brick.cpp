// Ablation: composing DISCO with BRICK-style variable-width storage.
//
// The paper notes (Sections I-II) that BRICK/CB are complementary to DISCO:
// DISCO shrinks counter *values*, BRICK shrinks the *bits storing them*.
// This bench quantifies the composition: store the final DISCO counters of a
// heavy-tailed workload in (a) fixed-width SRAM sized for the largest
// counter and (b) a BrickStore, and compare footprints; then do the same for
// exact full-size counters, where BRICK alone must fight the whole value
// range.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "counters/brick.hpp"
#include "stats/experiment.hpp"
#include "util/math.hpp"

int main() {
  using namespace disco;
  bench::print_title("DISCO x BRICK composition",
                     "paper Sections I-II (complementarity claim)");

  const auto flows = bench::real_trace_flows();
  bench::print_workload_summary("real-trace model", flows);
  std::cout << '\n';

  const int bits = 12;

  // Run DISCO once and read back the per-flow counter values.
  const auto method = stats::make_method("DISCO");
  method->prepare(flows.size(), bits,
                  stats::max_flow_length(flows, stats::CountingMode::kVolume));
  util::Rng rng(88);
  std::vector<std::uint64_t> disco_values(flows.size());
  std::vector<std::uint64_t> exact_values(flows.size());
  std::vector<double> estimates(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (auto l : flows[i].lengths) method->add(i, l, rng);
    disco_values[i] = method->counter_value(i);
    exact_values[i] = flows[i].bytes();
    estimates[i] = method->estimate(i);
  }
  const auto report = stats::relative_error_report(estimates, exact_values);
  const std::uint64_t disco_max =
      *std::max_element(disco_values.begin(), disco_values.end());
  const std::uint64_t exact_max =
      *std::max_element(exact_values.begin(), exact_values.end());

  auto brick_bits = [](const std::vector<std::uint64_t>& values) {
    counters::BrickStore store(values.size(), 4);
    for (std::size_t i = 0; i < values.size(); ++i) store.set(i, values[i]);
    return store.storage_bits();
  };

  const std::size_t n = flows.size();
  stats::TextTable table({"storage scheme", "bits total", "bits/flow"});
  auto row = [&](const std::string& name, std::size_t total, std::size_t count) {
    table.add_row({name, std::to_string(total),
                   stats::fmt(static_cast<double>(total) / static_cast<double>(count), 1)});
  };
  row("exact, fixed width", n * util::bit_width_u64(exact_max), n);
  row("exact + BRICK", brick_bits(exact_values), n);
  row("DISCO, fixed width", n * util::bit_width_u64(disco_max), n);
  row("DISCO + BRICK", brick_bits(disco_values), n);

  // Sparse deployment: a provisioned monitoring array is mostly idle slots
  // (the flow table is sized for the worst case).  Model 4x headroom.
  const std::size_t provisioned = n * 4;
  std::vector<std::uint64_t> sparse_disco(provisioned, 0);
  std::vector<std::uint64_t> sparse_exact(provisioned, 0);
  for (std::size_t i = 0; i < n; ++i) {
    sparse_disco[i * 4] = disco_values[i];
    sparse_exact[i * 4] = exact_values[i];
  }
  row("exact, fixed width, 25% occupancy",
      provisioned * util::bit_width_u64(exact_max), provisioned);
  row("exact + BRICK, 25% occupancy", brick_bits(sparse_exact), provisioned);
  row("DISCO, fixed width, 25% occupancy",
      provisioned * util::bit_width_u64(disco_max), provisioned);
  row("DISCO + BRICK, 25% occupancy", brick_bits(sparse_disco), provisioned);
  table.print(std::cout);

  std::cout << "\navg relative error of the DISCO run: "
            << stats::fmt(report.average, 4)
            << " (exact schemes are error-free)\n"
            << "\nfindings: (1) BRICK recovers real bits over fixed-width\n"
               "exact counters, whose values span many widths.  (2) on a\n"
               "fully occupied DISCO array the composition gains little --\n"
               "DISCO's logarithmic regulation has already flattened the\n"
               "value distribution into a narrow width band, so per-counter\n"
               "width metadata outweighs the reclaimed slack.  (3) in the\n"
               "realistic sparse-deployment regime (provisioned arrays,\n"
               "partial occupancy) DISCO + BRICK is the cheapest scheme by a\n"
               "wide margin: idle counters collapse to the minimum quantum.\n"
               "\"complementary\" (paper Sections I-II) holds, with the gain\n"
               "concentrated where counter populations are skewed or sparse.\n";
  return 0;
}
