// Table IV reproduction: execution-time ratio of ANLS-II (per-byte trials)
// over DISCO (one discounted update per packet), measured with
// google-benchmark on each traffic scenario.  The paper reports DISCO at
// least ten times faster, with the ratio growing with mean flow length.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "core/disco.hpp"
#include "counters/anls.hpp"
#include "trace/synthetic.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

using disco::trace::FlowRecord;

// Shared, lazily built workloads: flows flattened to (slot, length) updates.
struct Workload {
  std::vector<std::uint32_t> slots;
  std::vector<std::uint32_t> lengths;
  std::uint64_t max_flow = 1;
  std::size_t flow_count = 0;
};

Workload build(const disco::trace::Scenario& scenario, std::uint32_t flows) {
  disco::util::Rng rng(44);
  Workload w;
  const auto records = scenario.make_flows(flows, rng);
  w.flow_count = records.size();
  for (const auto& f : records) {
    w.max_flow = std::max(w.max_flow, f.bytes());
    for (auto l : f.lengths) {
      w.slots.push_back(f.id);
      w.lengths.push_back(l);
    }
  }
  return w;
}

const Workload& workload(int scenario_id) {
  // Modest flow counts: ANLS-II is O(bytes) per pass, and the ratio is what
  // matters, not the absolute duration.
  static const Workload s1 = build(disco::trace::scenario1(), 400);
  static const Workload s2 = build(disco::trace::scenario2(), 60);
  static const Workload s3 = build(disco::trace::scenario3(), 60);
  static const Workload rt = build(disco::trace::real_trace_model(), 30);
  switch (scenario_id) {
    case 1: return s1;
    case 2: return s2;
    case 3: return s3;
    default: return rt;
  }
}

void BM_Disco(benchmark::State& state) {
  const Workload& w = workload(static_cast<int>(state.range(0)));
  const double b = disco::util::choose_b(w.max_flow, 10);
  const disco::core::DiscoParams params(b);
  for (auto _ : state) {
    disco::util::Rng rng(7);
    std::vector<std::uint64_t> counters(w.flow_count, 0);
    for (std::size_t i = 0; i < w.slots.size(); ++i) {
      counters[w.slots[i]] =
          params.update(counters[w.slots[i]], w.lengths[i], rng);
    }
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.slots.size()));
}

void BM_AnlsII(benchmark::State& state) {
  const Workload& w = workload(static_cast<int>(state.range(0)));
  const double b = disco::util::choose_b(w.max_flow, 10);
  for (auto _ : state) {
    disco::util::Rng rng(7);
    std::vector<disco::counters::AnlsIICounter> counters(
        w.flow_count, disco::counters::AnlsIICounter(b));
    for (std::size_t i = 0; i < w.slots.size(); ++i) {
      counters[w.slots[i]].add(w.lengths[i], rng);
    }
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.slots.size()));
}

BENCHMARK(BM_Disco)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnlsII)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "==============================================================\n"
               "execution time: ANLS-II (per-byte trials) vs DISCO\n"
               "(reproduces paper Table IV; ranges 1-3 are Scenarios 1-3,\n"
               " range 4 is the real-trace model; compare BM_AnlsII/i with\n"
               " BM_Disco/i -- the paper reports ratios >= 10x, growing with\n"
               " mean flow length)\n"
               "==============================================================\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
