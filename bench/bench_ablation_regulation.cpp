// Ablation: the choice of regulation function f -- the design decision
// behind the paper's eq. 1.
//
// Any increasing convex f with f(0) = 0 yields an unbiased discount counter
// (see core/regulation.hpp).  This bench compares the paper's geometric f
// against a quadratic f at the SAME counter-bit budget on the same flows:
// geometric buys a bounded-relative-error-forever profile; quadratic buys
// errors that vanish on elephants at the cost of provisioning accuracy for
// the largest flow.  The paper's choice is the right one for fixed SRAM --
// this bench shows why, with numbers.
#include <iostream>

#include "bench_common.hpp"
#include "core/regulation.hpp"
#include "util/math.hpp"

int main() {
  using namespace disco;
  bench::print_title("regulation-function ablation: geometric (paper) vs quadratic",
                     "design choice behind eq. 1");

  const int bits = 12;
  const std::uint64_t max_flow = std::uint64_t{1} << 30;  // provision for 1 GB
  const double b = util::choose_b(max_flow, bits);
  core::GenericDisco<core::GeometricRegulation> geometric{
      core::GeometricRegulation(b)};
  core::GenericDisco<core::QuadraticRegulation> quadratic{
      core::QuadraticRegulation::for_budget(max_flow, bits)};

  std::cout << "budget: " << bits << "-bit counters provisioned for 1 GB flows\n"
            << "geometric b = " << stats::fmt(b, 6)
            << ", quadratic a = " << stats::fmt(quadratic.regulation().a(), 3)
            << "\n\n";

  util::Rng rng(2718);
  const int runs = static_cast<int>(200 * bench::scale());
  stats::TextTable table({"flow bytes", "geometric avg R", "quadratic avg R",
                          "geometric E[c]", "quadratic E[c]"});
  for (std::uint64_t flow = 10000; flow <= max_flow / 4; flow *= 16) {
    double geo_err = 0.0;
    double quad_err = 0.0;
    double geo_c = 0.0;
    double quad_c = 0.0;
    for (int r = 0; r < runs; ++r) {
      std::uint64_t cg = 0;
      std::uint64_t cq = 0;
      std::uint64_t sent = 0;
      while (sent < flow) {
        const std::uint64_t l = std::min<std::uint64_t>(1024, flow - sent);
        cg = geometric.update(cg, l, rng);
        cq = quadratic.update(cq, l, rng);
        sent += l;
      }
      geo_err += util::relative_error(geometric.estimate(cg),
                                      static_cast<double>(flow));
      quad_err += util::relative_error(quadratic.estimate(cq),
                                       static_cast<double>(flow));
      geo_c += static_cast<double>(cg);
      quad_c += static_cast<double>(cq);
    }
    table.add_row({std::to_string(flow), stats::fmt(geo_err / runs, 4),
                   stats::fmt(quad_err / runs, 4),
                   stats::fmt(geo_c / runs, 0), stats::fmt(quad_c / runs, 0)});
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: the quadratic profile wastes its counter range on small\n"
      "flows (error far above geometric there) and only catches up on the\n"
      "largest elephants; with heavy-tailed traffic -- where most flows are\n"
      "small -- the geometric profile's uniform bounded error wins at equal\n"
      "bits, which is exactly why eq. 1 regulates geometrically.\n";
  return 0;
}
