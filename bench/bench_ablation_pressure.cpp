// Ablation over the bounded-memory pressure policies (docs/robustness.md):
// what each admission x saturation choice costs in throughput and buys in
// accuracy when the flow table is provisioned at a fraction of the true flow
// population -- the regime DISCO's fixed-SRAM deployment (Section VI) lives
// in permanently.
//
// One skewed trace (elephants + mice, same shape as bench_pipeline's
// BurstSource) is ingested into a monitor whose table holds 1/8th of the
// flow id space.  An unbounded monitor over the same trace provides the
// accuracy reference.  Reported per policy:
//
//   * Mpps            single-threaded ingest throughput, pressure path
//                     included (Drop/Saturate is the seed fast path and the
//                     baseline the others are read against).
//   * top-100 error   weighted relative error of the 100 largest true flows
//                     (untracked heavy flows count their full volume as
//                     error, so Drop pays for every elephant it refused).
//   * pressure stats  rejected / evicted / saturated / rescaled tallies.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flowtable/monitor.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using disco::flowtable::AdmissionPolicy;
using disco::flowtable::FiveTuple;
using disco::flowtable::FlowMonitor;
using disco::flowtable::PressureStats;
using disco::flowtable::SaturationPolicy;

constexpr std::uint32_t kFlowSpace = 1u << 15;
constexpr std::uint32_t kBudget = kFlowSpace / 8;

FiveTuple tuple(std::uint32_t flow) {
  return FiveTuple{0x0a000000u + flow, 0x08080404u,
                   static_cast<std::uint16_t>(flow), 443, 6};
}

struct Packet {
  std::uint32_t flow;
  std::uint32_t length;
};

/// Skewed deterministic trace: AND of two uniforms concentrates mass on low
/// flow ids, giving a heavy-tailed active set far larger than kBudget.
std::vector<Packet> make_trace(std::uint64_t packets) {
  disco::util::Rng rng(71);
  std::vector<Packet> trace;
  trace.reserve(packets);
  for (std::uint64_t i = 0; i < packets; ++i) {
    const auto a = rng.uniform_u64(0, kFlowSpace - 1);
    const auto b = rng.uniform_u64(0, kFlowSpace - 1);
    trace.push_back({static_cast<std::uint32_t>(a & b),
                     static_cast<std::uint32_t>(rng.uniform_u64(64, 1500))});
  }
  return trace;
}

FlowMonitor::Config policy_config(std::uint32_t max_flows, AdmissionPolicy a,
                                  SaturationPolicy s) {
  FlowMonitor::Config c;
  c.max_flows = max_flows;
  c.counter_bits = 12;
  c.max_flow_bytes = 1ull << 30;
  c.max_flow_packets = 1 << 22;
  c.seed = 4242;
  c.pressure.admission = a;
  c.pressure.saturation = s;
  return c;
}

struct Row {
  std::string name;
  double mpps = 0.0;
  double top100_err = 0.0;
  std::uint64_t live = 0;
  PressureStats stats;
};

/// Weighted relative error of the 100 largest true flows: sum|est - true| /
/// sum(true), with untracked flows contributing their whole volume.
double top100_error(const FlowMonitor::EpochReport& report,
                    const std::vector<double>& truth) {
  std::vector<std::uint32_t> ids(truth.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + 100, ids.end(),
                    [&](std::uint32_t x, std::uint32_t y) {
                      return truth[x] > truth[y];
                    });
  std::vector<double> est(truth.size(), 0.0);
  for (const auto& f : report.flows) {
    const std::uint32_t id = f.flow.src_ip - 0x0a000000u;
    if (id < est.size()) est[id] = f.bytes;
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    const std::uint32_t id = ids[i];
    num += std::abs(est[id] - truth[id]);
    den += truth[id];
  }
  return den > 0.0 ? num / den : 0.0;
}

Row run_policy(const std::string& name, std::uint32_t max_flows,
               AdmissionPolicy a, SaturationPolicy s,
               const std::vector<Packet>& trace,
               const std::vector<double>& truth) {
  FlowMonitor monitor(policy_config(max_flows, a, s));
  const auto start = Clock::now();
  for (const auto& pkt : trace) {
    (void)monitor.ingest(tuple(pkt.flow), pkt.length);
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.name = name;
  row.mpps = static_cast<double>(trace.size()) / elapsed / 1e6;
  row.live = monitor.totals().flows;
  row.stats = monitor.pressure();
  row.top100_err = top100_error(monitor.rotate(), truth);
  return row;
}

/// Strips `--json=<path>` from argv; returns the path ("" when absent).
std::string parse_json_flag(int* argc, char** argv) {
  std::string path;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const bool telemetry = bench::parse_telemetry_flag(&argc, argv);
  const std::string json_path = parse_json_flag(&argc, argv);
  bench::print_title(
      "bounded-memory pressure policy ablation",
      "Section VI's fixed-SRAM regime; policies from docs/robustness.md");

  const auto packets = static_cast<std::uint64_t>(1'000'000 * bench::scale());
  const auto trace = make_trace(packets);
  std::vector<double> truth(kFlowSpace, 0.0);
  for (const auto& pkt : trace) truth[pkt.flow] += pkt.length;
  const std::size_t active = static_cast<std::size_t>(
      std::count_if(truth.begin(), truth.end(), [](double v) { return v > 0; }));
  std::cout << "trace: " << packets << " packets, " << active
            << " active flows, table budget " << kBudget << " ("
            << bench::scale() << "x scale)\n\n";

  struct Cell {
    const char* name;
    AdmissionPolicy a;
    SaturationPolicy s;
  };
  const Cell kMatrix[] = {
      {"drop/saturate", AdmissionPolicy::Drop, SaturationPolicy::Saturate},
      {"drop/rescale", AdmissionPolicy::Drop, SaturationPolicy::RescaleB},
      {"rap/saturate", AdmissionPolicy::RandomizedAdmission,
       SaturationPolicy::Saturate},
      {"rap/rescale", AdmissionPolicy::RandomizedAdmission,
       SaturationPolicy::RescaleB},
      {"evict-smallest/saturate", AdmissionPolicy::EvictSmallest,
       SaturationPolicy::Saturate},
      {"evict-smallest/rescale", AdmissionPolicy::EvictSmallest,
       SaturationPolicy::RescaleB},
  };

  std::vector<Row> rows;
  // Unbounded reference first: the accuracy floor every policy is read
  // against (its table holds the whole flow id space, so no pressure).
  rows.push_back(run_policy("unbounded", kFlowSpace, AdmissionPolicy::Drop,
                            SaturationPolicy::Saturate, trace, truth));
  for (const auto& cell : kMatrix) {
    rows.push_back(run_policy(cell.name, kBudget, cell.a, cell.s, trace, truth));
  }

  stats::TextTable table({"policy", "Mpps", "top-100 err", "live flows",
                          "rejected", "evicted", "saturated", "rescales"});
  for (const auto& r : rows) {
    table.add_row({r.name, stats::fmt(r.mpps, 2), stats::fmt(r.top100_err, 4),
                   std::to_string(r.live),
                   std::to_string(r.stats.flows_rejected),
                   std::to_string(r.stats.flows_evicted),
                   std::to_string(r.stats.counters_saturated),
                   std::to_string(r.stats.rescale_events)});
  }
  table.print(std::cout);
  std::cout << "\nreading: Drop loses every elephant that arrived after the\n"
               "table filled (high top-100 error); RAP and EvictSmallest keep\n"
               "heavy flows resident at ~the same ingest rate, because the\n"
               "admission path only runs on table-full rejections, never on\n"
               "the per-packet fast path.\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"bench_ablation_pressure\",\n"
        << "  \"scale\": " << bench::scale() << ",\n"
        << "  \"packets\": " << packets << ",\n"
        << "  \"flow_space\": " << kFlowSpace << ",\n"
        << "  \"budget\": " << kBudget << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"policy\": \"" << r.name << "\", \"mpps\": " << r.mpps
          << ", \"top100_err\": " << r.top100_err << ", \"live\": " << r.live
          << ", \"rejected\": " << r.stats.flows_rejected
          << ", \"evicted\": " << r.stats.flows_evicted
          << ", \"saturated\": " << r.stats.counters_saturated
          << ", \"rescales\": " << r.stats.rescale_events << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }

  if (telemetry) bench::dump_telemetry_snapshot();
  return 0;
}
