// Fig. 2 reproduction: coefficient of variation of T(S) versus total traffic
// for b = 1.002 and uniform increments theta in {1, 64, 512, 1024} --
// Theorem 2 closed form, cross-checked against Monte-Carlo simulation of the
// actual implementation.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/disco.hpp"
#include "core/theory.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace {

// Monte-Carlo: spread of the traffic needed to reach counter value S.
double simulate_cv(double b, std::uint64_t S, std::uint64_t theta, int runs,
                   disco::util::Rng& rng) {
  disco::core::DiscoParams params(b);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t traffic = 0;
    while (c < S) {
      c = params.update(c, theta, rng);
      traffic += theta;
    }
    const auto t = static_cast<double>(traffic);
    sum += t;
    sum2 += t * t;
  }
  const double mean = sum / runs;
  const double var = sum2 / runs - mean * mean;
  return std::sqrt(std::max(0.0, var)) / mean;
}

}  // namespace

int main() {
  using namespace disco;
  bench::print_title("coefficient of variation vs flow length (b = 1.002)",
                     "paper Fig. 2 / Theorem 2");

  const double b = 1.002;
  std::cout << "corollary 1 bound sqrt((b-1)/(b+1)) = "
            << stats::fmt(core::theory::cv_bound(b), 4) << "\n\n";

  stats::TextTable table({"counter S", "E[T(S)] (theta=1)", "e theta=1",
                          "e theta=64", "e theta=512", "e theta=1024",
                          "simulated e (theta=64)"});
  util::Rng rng(7);
  const int mc_runs = static_cast<int>(300 * bench::scale());
  for (std::uint64_t S : {64ull, 128ull, 256ull, 512ull, 1024ull, 2048ull,
                          4096ull, 8192ull}) {
    // Beyond S ~ 4096 one run needs ~f(S)/theta ~ 1e8 updates at b = 1.002;
    // the closed form has converged to the bound there, so skip the MC.
    const std::string sim =
        S <= 4096 ? stats::fmt(simulate_cv(b, S, 64, mc_runs, rng), 4) : "-";
    table.add_row({std::to_string(S),
                   stats::fmt_sci(core::theory::expected_traffic(b, S, 1)),
                   stats::fmt(core::theory::coefficient_of_variation(b, S, 1), 4),
                   stats::fmt(core::theory::coefficient_of_variation(b, S, 64), 4),
                   stats::fmt(core::theory::coefficient_of_variation(b, S, 512), 4),
                   stats::fmt(core::theory::coefficient_of_variation(b, S, 1024), 4),
                   sim});
  }
  table.print(std::cout);
  std::cout << "\nall curves rise toward the same bound regardless of theta\n"
               "(paper Fig. 2); the Monte-Carlo column tracks the theta=64\n"
               "closed form, pinning the implementation to the analysis.\n"
               "(closed-form zeros mark the early region where theta > b^c\n"
               "breaks the geometric-trial model -- the MC value there is\n"
               "small but nonzero; see core/theory.cpp.)\n";
  return 0;
}
