// Fig. 8 reproduction: cumulative distribution of per-flow relative error
// with 10-bit counters, flow volume counting, DISCO vs SAC.  The paper's
// headline reading: under DISCO 90% of flows err below ~0.04 and all below
// ~0.15, while SAC needs ~0.22 and ~0.4.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("CDF of relative error at 10-bit counters", "paper Fig. 8");
  const auto flows = bench::real_trace_flows();
  bench::print_workload_summary("real-trace model (NLANR OC-192 stand-in)", flows);
  std::cout << '\n';

  const int bits = 10;
  const auto disco_method = stats::make_method("DISCO");
  const auto sac_method = stats::make_method("SAC");
  const auto rd =
      stats::run_accuracy(*disco_method, flows, stats::CountingMode::kVolume, bits, 801);
  const auto rs =
      stats::run_accuracy(*sac_method, flows, stats::CountingMode::kVolume, bits, 801);

  stats::TextTable table({"relative error r", "P(R<=r) DISCO", "P(R<=r) SAC"});
  for (double r : {0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.15, 0.20, 0.25, 0.30,
                   0.40, 0.50}) {
    table.add_row({stats::fmt(r, 2), stats::fmt(rd.errors.samples.cdf(r), 3),
                   stats::fmt(rs.errors.samples.cdf(r), 3)});
  }
  table.print(std::cout);

  std::cout << "\nquantiles:            DISCO    SAC\n";
  std::cout << "  90% of flows under  " << stats::fmt(rd.errors.samples.quantile(0.9), 3)
            << "    " << stats::fmt(rs.errors.samples.quantile(0.9), 3) << '\n';
  std::cout << "  all flows under     " << stats::fmt(rd.errors.maximum, 3)
            << "    " << stats::fmt(rs.errors.maximum, 3) << '\n';
  std::cout << "\npaper Fig. 8: DISCO (0.04, 0.15) vs SAC (0.22, 0.4).\n";
  return 0;
}
