// Table V reproduction: throughput and error of the DISCO implementation on
// the simulated IXP2850 (see sim/np_system.hpp for the substitution note).
// Grid: MEs in {1, 2, 4} x burst length {1, 1-8 with on-chip aggregation},
// plus the paper's worst-case note (all-64 B packets need 8 MEs for 10 Gbps).
#include <iostream>

#include "bench_common.hpp"
#include "sim/np_system.hpp"

int main(int argc, char** argv) {
  using namespace disco;
  const bool telemetry = bench::parse_telemetry_flag(&argc, argv);
  bench::print_title("throughput on the simulated IXP2850", "paper Table V");

  sim::NpConfig base;
  base.flow_count = 2560;  // the paper's traffic pattern
  base.mean_packets = 200.0 * bench::scale();
  base.seed = 55;

  stats::TextTable table({"Burst len.", "Pkt Len.", "# ME", "error",
                          "Throughput", "SRAM util"});
  auto run_row = [&](std::uint32_t burst_hi, bool aggregate, int mes,
                     const std::string& burst_label) {
    sim::NpConfig c = base;
    c.burst_lo = 1;
    c.burst_hi = burst_hi;
    c.burst_aggregation = aggregate;
    c.num_mes = mes;
    const sim::NpResult r = sim::run_np_simulation(c);
    table.add_row({burst_label, "64-1kB", std::to_string(mes),
                   stats::fmt(r.avg_relative_error, 3),
                   stats::fmt(r.throughput_gbps, 1) + "Gbps",
                   stats::fmt(r.sram_utilization, 2)});
  };

  for (int mes : {4, 2, 1}) run_row(1, false, mes, "1");
  for (int mes : {4, 2, 1}) run_row(8, true, mes, "1-8");
  table.print(std::cout);

  std::cout << "\npaper Table V: 11.1 / 22.0 / 39.0 Gbps for 1/2/4 MEs at\n"
               "burst 1 (error 0.013), 28.6 / 55.3 / 104.8 Gbps with bursts\n"
               "1-8 and on-chip aggregation (error 0.007).\n\n";

  // Worst case: all packets 64 B, no bursts.
  stats::TextTable worst({"# ME", "Throughput (64B pkts)"});
  for (int mes : {1, 4, 8}) {
    sim::NpConfig c = base;
    c.len_lo = 64;
    c.len_hi = 64;
    c.num_mes = mes;
    const sim::NpResult r = sim::run_np_simulation(c);
    worst.add_row({std::to_string(mes), stats::fmt(r.throughput_gbps, 2) + "Gbps"});
  }
  worst.print(std::cout);
  std::cout << "\npaper: \"considering the worst case where all the packets\n"
               "are 64B and arrive without burst, 8 MEs are needed to achieve\n"
               "10Gbps throughput\" -- reproduced above.\n";
  if (telemetry) bench::dump_telemetry_snapshot();
  return 0;
}
