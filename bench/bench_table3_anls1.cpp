// Table III reproduction: ANLS-I (the E1 sampling extension) on flow volume
// counting -- relative errors too large to be acceptable, driven by
// intra-flow packet length variance.  Prints the share of flows with length
// variance > 10, the mean variance (paper: 1e3..1e4), and the error
// comparison against DISCO at the same 10-bit budget.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("ANLS-I (E1) fails for flow volume counting",
                     "paper Table III");

  struct Workload {
    std::string name;
    std::vector<trace::FlowRecord> flows;
  };
  util::Rng rng(33);
  const std::uint32_t n = bench::scaled(1500);
  std::vector<Workload> workloads;
  workloads.push_back({"Scenario 1", trace::scenario1().make_flows(n, rng)});
  workloads.push_back({"Scenario 2", trace::scenario2().make_flows(n, rng)});
  workloads.push_back({"Scenario 3", trace::scenario3().make_flows(n, rng)});
  workloads.push_back({"Real trace", bench::real_trace_flows()});

  const int bits = 10;
  stats::TextTable table({"Scenario", "pkt len var>10", "mean pkt len var",
                          "ANLS-I avg R", "DISCO avg R"});
  for (const auto& w : workloads) {
    const auto summary = trace::summarize(w.flows);
    const auto anls1 = stats::make_method("ANLS-I");
    const auto disco = stats::make_method("DISCO");
    const auto ra =
        stats::run_accuracy(*anls1, w.flows, stats::CountingMode::kVolume, bits, 3303);
    const auto rd =
        stats::run_accuracy(*disco, w.flows, stats::CountingMode::kVolume, bits, 3303);
    table.add_row({w.name,
                   stats::fmt(summary.share_length_variance_gt10 * 100.0, 2) + "%",
                   stats::fmt_sci(summary.mean_length_variance),
                   stats::fmt(ra.errors.average, 2),
                   stats::fmt(rd.errors.average, 4)});
  }
  table.print(std::cout);
  std::cout << "\npaper Table III: ANLS-I errors of 6.23-18.15 (vs DISCO's\n"
               "0.012-0.038 in Table II) on traffic whose packet length\n"
               "variance exceeds 10 for ~100% of flows (62.78% on the real\n"
               "trace).  Sampling-based byte accumulation cannot survive\n"
               "length variance; DISCO's discounted whole-packet update can.\n";
  return 0;
}
