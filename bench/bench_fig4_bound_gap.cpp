// Fig. 4 reproduction: the gap between the Theorem 3 bound f^-1(n) and the
// observed expected counter value, 50 runs per flow length (as in the
// paper), for flow size counting (unit increments) and flow volume counting.
#include <iostream>

#include "bench_common.hpp"
#include "core/disco.hpp"
#include "core/theory.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace {

double mean_counter(const disco::core::DiscoParams& params, std::uint64_t n,
                    std::uint64_t increment, int runs, disco::util::Rng& rng) {
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < n) {
      const std::uint64_t l = std::min<std::uint64_t>(increment, n - sent);
      c = params.update(c, l, rng);
      sent += l;
    }
    sum += static_cast<double>(c);
  }
  return sum / runs;
}

}  // namespace

int main() {
  using namespace disco;
  bench::print_title("gap between bound f^-1(n) and E[counter]",
                     "paper Fig. 4 / Theorem 3");

  const double b = 1.01;
  const core::DiscoParams params(b);
  util::Rng rng(4);
  const int runs = static_cast<int>(50 * std::max(1.0, bench::scale()));

  stats::TextTable table({"flow length n", "bound f^-1(n)", "E[c] (l=1)",
                          "abs gap", "relative gap", "E[c] (l=512)"});
  for (std::uint64_t n : {1000ull, 3162ull, 10000ull, 31623ull, 100000ull,
                          316228ull, 1000000ull}) {
    const double bound =
        core::theory::expected_counter_upper_bound(b, static_cast<double>(n));
    const double mean_size = mean_counter(params, n, 1, runs, rng);
    const double mean_vol = mean_counter(params, n, 512, runs, rng);
    const double gap = bound - mean_size;
    table.add_row({std::to_string(n), stats::fmt(bound, 2),
                   stats::fmt(mean_size, 2), stats::fmt(gap, 3),
                   stats::fmt_sci(gap / static_cast<double>(n)),
                   stats::fmt(mean_vol, 2)});
  }
  table.print(std::cout);
  std::cout << "\nthe Theorem 3 bound is tight: the measured E[c] coincides\n"
               "with f^-1(n) to within 50-run Monte-Carlo noise (|gap| of a\n"
               "counter value or less), i.e. a relative gap on the order of\n"
               "1e-4 and below, shrinking with n -- the paper's Fig. 4.\n";
  return 0;
}
