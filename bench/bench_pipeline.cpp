// Ingest throughput of the lock-free pipeline versus the mutex-per-shard
// sharded monitor -- the software version of the paper's Section VI claim
// that ring-fed run-to-completion MicroEngines with burst pre-aggregation
// reach line rate (Table V: 11.1 Gbps per ME, ~2.5x of it from aggregation
// alone).
//
// Both systems ingest the SAME bursty workload (back-to-back same-flow runs,
// the traffic shape Section VI exploits) from N producer threads:
//
//   * ShardedFlowMonitor: each producer does the full DISCO update inline
//     under its shard's mutex (64 shards, so contention is mild; the cost is
//     the update itself plus the lock).
//   * PipelineMonitor: producers only hash and push into SPSC rings; N
//     dedicated workers pop in batches, coalesce bursts, and apply updates
//     to their exclusive shards.  Throughput comes from three places: no
//     locks, batched ring drains, and ~burst-length-fold fewer discounted
//     updates.
//
// Reported Mpps is end-to-end: producers start to last packet applied
// (drain), so ring residue is paid for, not hidden.
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "modules/host.hpp"
#include "pipeline/pipeline.hpp"
#include "util/rng.hpp"
#include "util/atomic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using disco::flowtable::FiveTuple;

constexpr std::uint32_t kFlows = 4096;

// Bursty packet source: runs of 1..16 same-flow packets (mean ~6), flow ids
// skewed so a handful of elephants dominate -- the shape of real links and
// the precondition for Section VI's aggregation win.  Deterministic per
// producer id.
struct BurstSource {
  explicit BurstSource(unsigned producer) : rng(9000 + producer) {}

  struct Packet {
    FiveTuple flow;
    std::uint32_t length;
  };

  Packet next() {
    if (remaining == 0) {
      // Skew: AND of two uniforms concentrates mass on low flow ids.
      const auto a = rng.uniform_u64(0, kFlows - 1);
      const auto b = rng.uniform_u64(0, kFlows - 1);
      current = static_cast<std::uint32_t>(a & b);
      remaining = 1 + rng.uniform_u64(0, 15);
    }
    --remaining;
    return Packet{FiveTuple{0x0a000000u + current, 0x08080404u,
                            static_cast<std::uint16_t>(current), 443, 6},
                  static_cast<std::uint32_t>(rng.uniform_u64(64, 1500))};
  }

  disco::util::Rng rng;
  std::uint32_t current = 0;
  std::uint64_t remaining = 0;
};

disco::flowtable::FlowMonitor::Config base_config() {
  disco::flowtable::FlowMonitor::Config c;
  c.max_flows = 1 << 16;
  c.counter_bits = 12;
  c.max_flow_bytes = 1ull << 34;
  c.max_flow_packets = 1 << 24;
  c.seed = 4242;
  return c;
}

struct RunResult {
  double mpps = 0.0;
  double gbps = 0.0;
  std::uint64_t coalesced = 0;
};

RunResult run_sharded(unsigned producers, std::uint64_t packets_per_producer) {
  using namespace disco;
  flowtable::ShardedFlowMonitor::Config config;
  config.base = base_config();
  config.shards = 64;
  flowtable::ShardedFlowMonitor monitor(config);

  disco::util::atomic<std::uint64_t> total_bytes{0};
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      BurstSource source(p);
      std::uint64_t bytes = 0;
      for (std::uint64_t i = 0; i < packets_per_producer; ++i) {
        const auto pkt = source.next();
        (void)monitor.ingest(pkt.flow, pkt.length);
        bytes += pkt.length;
      }
      total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult r;
  r.mpps = static_cast<double>(producers) *
           static_cast<double>(packets_per_producer) / elapsed / 1e6;
  r.gbps = static_cast<double>(total_bytes.load(std::memory_order_relaxed)) * 8.0 / elapsed / 1e9;
  return r;
}

/// Pipeline knobs the A/B sections vary; defaults match the headline run.
struct PipelineOptions {
  unsigned coalescer_slots = 64;   ///< 0 disables burst coalescing
  bool decision_table = true;      ///< attach the DISCO update fast path
  bool batched_ingest = true;      ///< producers use ingest_batch (rx-burst)
  std::size_t prefetch_depth = 8;  ///< monitor two-phase lookahead; 0 = off
  bool hugepages = false;          ///< advise THP for table/counter arrays
  disco::flowtable::EstimatorKind estimator =
      disco::flowtable::EstimatorKind::Disco;
};

/// Producer batch size for the batched-ingest path: one NIC rx-burst worth
/// of packets hashed, bucketed, and published per ring commit.
constexpr std::size_t kIngestBatch = 256;

RunResult run_pipeline(unsigned producers, std::uint64_t packets_per_producer,
                       const PipelineOptions& options = {}) {
  using namespace disco;
  pipeline::PipelineMonitor::Config config;
  config.base = base_config();
  config.base.decision_table = options.decision_table;
  config.base.prefetch_depth = options.prefetch_depth;
  config.base.hugepages = options.hugepages;
  config.base.estimator = options.estimator;
  config.workers = producers;  // one shard-owning worker per producer
  config.producers = producers;
  config.ring_capacity = 1u << 14;
  config.backpressure = pipeline::Backpressure::Block;
  config.coalescer.slots = options.coalescer_slots;
  pipeline::PipelineMonitor monitor(config);

  disco::util::atomic<std::uint64_t> total_bytes{0};
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      BurstSource source(p);
      std::uint64_t bytes = 0;
      if (options.batched_ingest) {
        std::vector<pipeline::PipelineMonitor::PacketEvent> batch(kIngestBatch);
        std::uint64_t done = 0;
        while (done < packets_per_producer) {
          const std::size_t n = static_cast<std::size_t>(
              std::min<std::uint64_t>(kIngestBatch, packets_per_producer - done));
          for (std::size_t j = 0; j < n; ++j) {
            const auto pkt = source.next();
            batch[j] = {pkt.flow, pkt.length, 0};
            bytes += pkt.length;
          }
          (void)monitor.ingest_batch(p, batch.data(), n);
          done += n;
        }
      } else {
        for (std::uint64_t i = 0; i < packets_per_producer; ++i) {
          const auto pkt = source.next();
          (void)monitor.ingest(p, pkt.flow, pkt.length);
          bytes += pkt.length;
        }
      }
      total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  monitor.drain();  // end-to-end: count the time to apply every packet
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult r;
  r.mpps = static_cast<double>(producers) *
           static_cast<double>(packets_per_producer) / elapsed / 1e6;
  r.gbps = static_cast<double>(total_bytes.load(std::memory_order_relaxed)) * 8.0 / elapsed / 1e9;
  r.coalesced = monitor.coalesced();
  return r;
}

/// Best-of-`repeats` wrapper for the ablation rows: single runs at bench
/// scale are a few milliseconds, and on a shared host the run-to-run spread
/// (scheduler, frequency, cache pollution) is larger than several of the
/// effects being measured.  Max, not mean: the quantity of interest is the
/// attainable throughput of a configuration, and every slowdown source is
/// one-sided noise.
RunResult run_pipeline_best(unsigned producers,
                            std::uint64_t packets_per_producer,
                            const PipelineOptions& options, int repeats) {
  RunResult best;
  for (int i = 0; i < repeats; ++i) {
    const RunResult r = run_pipeline(producers, packets_per_producer, options);
    if (r.mpps > best.mpps) best = r;
  }
  return best;
}

/// Module-overhead ablation: the same pipeline run, but the main thread
/// rotates `rotations` times at packet-count thresholds (polled through the
/// control plane) while producers ingest -- once with no subscribers, once
/// with the full built-in module set attached.  Both arms pay for the
/// rotations and the polling; the delta is what the analysis layer costs.
RunResult run_pipeline_with_modules(unsigned producers,
                                    std::uint64_t packets_per_producer,
                                    unsigned rotations, bool with_modules) {
  using namespace disco;
  pipeline::PipelineMonitor::Config config;
  config.base = base_config();
  config.workers = producers;
  config.producers = producers;
  config.ring_capacity = 1u << 14;
  config.backpressure = pipeline::Backpressure::Block;
  config.coalescer.slots = 64;
  pipeline::PipelineMonitor monitor(config);

  modules::ModuleHost host("bench_modules");
  if (with_modules) {
    for (auto& module : modules::make_modules("all")) {
      host.attach(std::move(module));
    }
    host.subscribe_to(monitor);
  }

  const std::uint64_t total_packets =
      static_cast<std::uint64_t>(producers) * packets_per_producer;
  disco::util::atomic<std::uint64_t> total_bytes{0};
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      BurstSource source(p);
      std::uint64_t bytes = 0;
      for (std::uint64_t i = 0; i < packets_per_producer; ++i) {
        const auto pkt = source.next();
        (void)monitor.ingest(p, pkt.flow, pkt.length);
        bytes += pkt.length;
      }
      total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    });
  }
  // Rotate mid-stream at evenly spaced packet thresholds (the last interval
  // is closed after drain, below).
  unsigned rotated = 0;
  while (rotated + 1 < rotations) {
    if (monitor.packets_seen() >=
        (rotated + 1) * (total_packets / rotations)) {
      (void)monitor.rotate();
      ++rotated;
    } else {
      std::this_thread::yield();
    }
    if (monitor.packets_seen() >= total_packets) break;
  }
  for (auto& t : threads) t.join();
  monitor.drain();
  (void)monitor.rotate();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult r;
  r.mpps = static_cast<double>(total_packets) / elapsed / 1e6;
  r.gbps = static_cast<double>(total_bytes.load(std::memory_order_relaxed)) * 8.0 / elapsed / 1e9;
  r.coalesced = monitor.coalesced();
  return r;
}

/// Strips `--json=<path>` from argv; returns the path ("" when absent).
std::string parse_json_flag(int* argc, char** argv) {
  std::string path;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return path;
}

struct MainRow {
  unsigned producers;
  RunResult sharded;
  RunResult pipe;
  double coalesce_ratio;
};

struct AbRow {
  unsigned producers;
  RunResult table_off;
  RunResult table_on;
};

struct ModuleRow {
  unsigned producers;
  unsigned rotations;
  RunResult without;
  RunResult with;
};

struct AblationRow {
  const char* label;
  PipelineOptions options;
  RunResult result;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const bool telemetry = bench::parse_telemetry_flag(&argc, argv);
  const std::string json_path = parse_json_flag(&argc, argv);
  bench::print_title(
      "lock-free pipeline vs mutex-sharded monitor",
      "Section VI / Table V: ring-fed MEs with burst pre-aggregation");

  const auto packets_per_producer =
      static_cast<std::uint64_t>(500'000 * bench::scale());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads available: " << hw
            << " (pipeline adds one worker thread per producer)\n\n";

  std::vector<MainRow> main_rows;
  stats::TextTable table({"producers", "sharded Mpps", "pipeline Mpps",
                          "speedup", "pipeline Gbps", "coalesce ratio"});
  // Main rows are best-of-3 for the same reason the ingest ablation is
  // best-of-5: single runs at bench scale are milliseconds, and on a
  // shared box the scheduler/frequency spread exceeds PR-sized effects.
  // These rows are the trajectory headline in BENCH_<n>.json, so a lucky
  // or unlucky draw must not move them.
  constexpr int kMainRepeats = 3;
  for (unsigned producers : {1u, 2u, 4u, 8u}) {
    const RunResult sharded = run_sharded(producers, packets_per_producer);
    const RunResult pipe = run_pipeline_best(producers, packets_per_producer,
                                             PipelineOptions{}, kMainRepeats);
    const double total_packets = static_cast<double>(producers) *
                                 static_cast<double>(packets_per_producer);
    // updates saved: merged packets / all packets -- ~0.6 means each DISCO
    // update covered ~2.5 packets, the paper's aggregation factor.
    const double coalesce_ratio =
        static_cast<double>(pipe.coalesced) / total_packets;
    main_rows.push_back({producers, sharded, pipe, coalesce_ratio});
    table.add_row({std::to_string(producers), stats::fmt(sharded.mpps, 2),
                   stats::fmt(pipe.mpps, 2),
                   stats::fmt(pipe.mpps / sharded.mpps, 2) + "x",
                   stats::fmt(pipe.gbps, 2), stats::fmt(coalesce_ratio, 2)});
  }
  table.print(std::cout);
  std::cout << "\nthe pipeline wins on three fronts: producers never take a\n"
               "lock (SPSC rings), workers drain rings in batches, and burst\n"
               "coalescing applies one discounted update per ~run of\n"
               "same-flow packets (Section VI's ~2.5x aggregation factor).\n";
  if (hw < 4) {
    std::cout << "(only " << hw
              << " hardware thread(s) here: producer+worker pairs are\n"
                 "oversubscribed, so the speedup shown is mostly the\n"
                 "coalescing and lock-elision win, not parallel scaling.)\n";
  }

  // --- decision-table A/B ---------------------------------------------------
  // Coalescing disabled so every packet is one discounted update: the purest
  // end-to-end view of what the DecisionTable fast path buys the hot loop.
  std::cout << "\ndecision-table A/B (coalescing disabled, one update per "
               "packet):\n";
  std::vector<AbRow> ab_rows;
  stats::TextTable ab({"producers", "double-path Mpps", "table-path Mpps",
                       "speedup"});
  const PipelineOptions off{.coalescer_slots = 0, .decision_table = false};
  const PipelineOptions on{.coalescer_slots = 0, .decision_table = true};
  for (unsigned producers : {1u, 2u}) {
    const RunResult table_off =
        run_pipeline(producers, packets_per_producer, off);
    const RunResult table_on = run_pipeline(producers, packets_per_producer, on);
    ab_rows.push_back({producers, table_off, table_on});
    ab.add_row({std::to_string(producers), stats::fmt(table_off.mpps, 2),
                stats::fmt(table_on.mpps, 2),
                stats::fmt(table_on.mpps / table_off.mpps, 2) + "x"});
  }
  ab.print(std::cout);
  std::cout << "(both rows produce bit-identical estimates; the table only\n"
               "removes the log/exp/pow calls from each update decision.)\n";

  // --- ingest ablation -------------------------------------------------------
  // The throughput frontier, one lever at a time, starting from the
  // per-packet/no-prefetch arrangement earlier BENCH_*.json files measured:
  // batched producer ingest (hash + bucket + span commit), the monitor's
  // two-phase prefetch walk, hugepage-backed arrays, and the estimator
  // family.  The tag-probe engine itself is compile-time (simd_isa below;
  // see bench_micro_update for the SIMD-vs-scalar probe A/B).  One
  // producer/worker pair: the lever effects are per-core, and adding pairs
  // on an oversubscribed host only adds scheduler noise.
  constexpr int kAblationRepeats = 5;
  std::cout << "\ningest ablation (1 producer, best of " << kAblationRepeats
            << " runs, probe engine: " << flowtable::tagprobe::isa_name()
            << "):\n";
  using disco::flowtable::EstimatorKind;
  std::vector<AblationRow> ablation_rows = {
      {"per-packet ingest, no prefetch",
       {.batched_ingest = false, .prefetch_depth = 0}, {}},
      {"+ batched ingest",
       {.batched_ingest = true, .prefetch_depth = 0}, {}},
      {"+ prefetch depth 8",
       {.batched_ingest = true, .prefetch_depth = 8}, {}},
      {"+ hugepages",
       {.batched_ingest = true, .prefetch_depth = 8, .hugepages = true}, {}},
      {"additive estimator (no hugepages)",
       {.batched_ingest = true, .prefetch_depth = 8,
        .estimator = EstimatorKind::AdditiveError}, {}},
      {"additive estimator + hugepages",
       {.batched_ingest = true, .prefetch_depth = 8, .hugepages = true,
        .estimator = EstimatorKind::AdditiveError}, {}},
  };
  stats::TextTable abl({"configuration", "Mpps", "Gbps", "vs per-packet"});
  for (AblationRow& row : ablation_rows) {
    row.result = run_pipeline_best(1, packets_per_producer, row.options,
                                   kAblationRepeats);
    abl.add_row({row.label, stats::fmt(row.result.mpps, 2),
                 stats::fmt(row.result.gbps, 2),
                 stats::fmt(row.result.mpps / ablation_rows[0].result.mpps, 2) +
                     "x"});
  }
  abl.print(std::cout);
  std::cout << "(batched ingest amortises the ring's release store and the\n"
               "routing hash over an rx-burst; prefetch hides the tag-group\n"
               "and counter-slot misses.  The additive estimator's per-update\n"
               "cost is lower than DISCO's, but its halve-all rescale walks\n"
               "are amortised over the epoch: short measurement windows like\n"
               "this one pay the O(slots) scale ramp up front, long ones --\n"
               "see bench_micro_update's estimator A/B -- come out ahead.)\n";

  // --- module-overhead ablation ---------------------------------------------
  // Same pipeline, rotating mid-stream: once with no epoch subscribers, once
  // with all built-in analysis modules attached.  Modules run on the
  // control-plane thread at rotate(), so ingest throughput should be nearly
  // untouched -- this section is the number that claim rests on
  // (docs/modules.md, EXPERIMENTS.md).
  constexpr unsigned kRotations = 8;
  std::cout << "\nmodule-overhead ablation (" << kRotations
            << " rotations mid-stream, all built-in modules):\n";
  std::vector<ModuleRow> module_rows;
  stats::TextTable mods({"producers", "no-modules Mpps", "modules Mpps",
                         "overhead"});
  for (unsigned producers : {1u, 2u}) {
    const RunResult without = run_pipeline_with_modules(
        producers, packets_per_producer, kRotations, false);
    const RunResult with = run_pipeline_with_modules(
        producers, packets_per_producer, kRotations, true);
    module_rows.push_back({producers, kRotations, without, with});
    const double overhead = without.mpps > 0.0
                                ? (without.mpps - with.mpps) / without.mpps
                                : 0.0;
    mods.add_row({std::to_string(producers), stats::fmt(without.mpps, 2),
                  stats::fmt(with.mpps, 2),
                  stats::fmt(overhead * 100.0, 1) + "%"});
  }
  mods.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"bench_pipeline\",\n"
        << "  \"scale\": " << bench::scale() << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"packets_per_producer\": " << packets_per_producer << ",\n"
        << "  \"simd_isa\": \"" << flowtable::tagprobe::isa_name() << "\",\n"
        << "  \"main\": [\n";
    for (std::size_t i = 0; i < main_rows.size(); ++i) {
      const MainRow& r = main_rows[i];
      out << "    {\"producers\": " << r.producers
          << ", \"sharded_mpps\": " << r.sharded.mpps
          << ", \"pipeline_mpps\": " << r.pipe.mpps
          << ", \"speedup\": " << r.pipe.mpps / r.sharded.mpps
          << ", \"pipeline_gbps\": " << r.pipe.gbps
          << ", \"coalesce_ratio\": " << r.coalesce_ratio << "}"
          << (i + 1 < main_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"decision_table_ab\": [\n";
    for (std::size_t i = 0; i < ab_rows.size(); ++i) {
      const AbRow& r = ab_rows[i];
      out << "    {\"producers\": " << r.producers
          << ", \"table_off_mpps\": " << r.table_off.mpps
          << ", \"table_on_mpps\": " << r.table_on.mpps
          << ", \"speedup\": " << r.table_on.mpps / r.table_off.mpps << "}"
          << (i + 1 < ab_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"ingest_ablation\": [\n";
    for (std::size_t i = 0; i < ablation_rows.size(); ++i) {
      const AblationRow& r = ablation_rows[i];
      out << "    {\"label\": \"" << r.label << "\""
          << ", \"batched_ingest\": "
          << (r.options.batched_ingest ? "true" : "false")
          << ", \"prefetch_depth\": " << r.options.prefetch_depth
          << ", \"hugepages\": " << (r.options.hugepages ? "true" : "false")
          << ", \"estimator\": \""
          << (r.options.estimator == EstimatorKind::AdditiveError ? "additive"
                                                                  : "disco")
          << "\", \"mpps\": " << r.result.mpps
          << ", \"gbps\": " << r.result.gbps << "}"
          << (i + 1 < ablation_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"modules\": [\n";
    for (std::size_t i = 0; i < module_rows.size(); ++i) {
      const ModuleRow& r = module_rows[i];
      const double overhead =
          r.without.mpps > 0.0 ? (r.without.mpps - r.with.mpps) / r.without.mpps
                               : 0.0;
      out << "    {\"producers\": " << r.producers
          << ", \"rotations\": " << r.rotations
          << ", \"no_modules_mpps\": " << r.without.mpps
          << ", \"modules_mpps\": " << r.with.mpps
          << ", \"overhead\": " << overhead << "}"
          << (i + 1 < module_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }

  if (telemetry) bench::dump_telemetry_snapshot();
  return 0;
}
