// Table II reproduction: average relative error for SAC vs DISCO at 8/9/10
// bit counters under the three synthetic scenarios and the real-trace
// stand-in (flow volume counting).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("average relative error under different traffic scenarios",
                     "paper Table II");

  struct Workload {
    std::string name;
    std::vector<trace::FlowRecord> flows;
  };
  util::Rng rng(22);
  const std::uint32_t n = bench::scaled(1500);
  std::vector<Workload> workloads;
  workloads.push_back({"Scenario 1", trace::scenario1().make_flows(n, rng)});
  workloads.push_back({"Scenario 2", trace::scenario2().make_flows(n, rng)});
  workloads.push_back({"Scenario 3", trace::scenario3().make_flows(n, rng)});
  workloads.push_back({"Real trace", bench::real_trace_flows()});

  const std::vector<int> bits = {8, 9, 10};
  stats::TextTable table({"Scenario", "Metric", "SAC@8", "DISCO@8", "SAC@9",
                          "DISCO@9", "SAC@10", "DISCO@10"});
  for (const auto& w : workloads) {
    bench::print_workload_summary(w.name, w.flows);
    std::vector<std::string> row = {w.name, "avg relative error"};
    for (int bit : bits) {
      const auto sac = stats::make_method("SAC");
      const auto disco = stats::make_method("DISCO");
      const auto rs =
          stats::run_accuracy(*sac, w.flows, stats::CountingMode::kVolume, bit, 2202);
      const auto rd =
          stats::run_accuracy(*disco, w.flows, stats::CountingMode::kVolume, bit, 2202);
      row.push_back(stats::fmt(rs.errors.average, 3));
      row.push_back(stats::fmt(rd.errors.average, 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\npaper Table II shape: error falls with counter size, and\n"
               "DISCO beats SAC at equal bits in every scenario (paper\n"
               "reference points: scenario 1 @8 bits SAC 0.089 / DISCO 0.052;\n"
               "real trace @10 bits SAC 0.054 / DISCO 0.012).\n";
  return 0;
}
