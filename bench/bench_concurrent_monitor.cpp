// Host-CPU scaling of the sharded monitor: the software analogue of the
// paper's multi-MicroEngine scaling (Table V measures the NP; this measures
// the library on a multicore host).  Reports ingest throughput in Mpps and
// Gbps versus thread count.
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "util/rng.hpp"
#include "util/atomic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  double mpps = 0.0;
  double gbps = 0.0;
};

RunResult run(unsigned threads, std::uint64_t packets_per_thread) {
  using namespace disco;
  flowtable::ShardedFlowMonitor::Config config;
  config.base.max_flows = 1 << 16;
  config.base.counter_bits = 12;
  config.base.max_flow_bytes = 1ull << 34;
  config.base.max_flow_packets = 1 << 24;
  config.base.seed = 4242;
  config.shards = 64;  // plenty of shards: contention stays on the data, not the map
  flowtable::ShardedFlowMonitor monitor(config);

  disco::util::atomic<std::uint64_t> total_bytes{0};
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(100 + t);
      std::uint64_t bytes = 0;
      for (std::uint64_t i = 0; i < packets_per_thread; ++i) {
        const auto flow = static_cast<std::uint32_t>(rng.uniform_u64(0, 8191));
        const auto len = static_cast<std::uint32_t>(rng.uniform_u64(64, 1500));
        const flowtable::FiveTuple tuple{0x0a000000u + flow, 0x08080404u,
                                         static_cast<std::uint16_t>(flow), 443, 6};
        (void)monitor.ingest(tuple, len);
        bytes += len;
      }
      total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult r;
  const double packets = static_cast<double>(threads) *
                         static_cast<double>(packets_per_thread);
  r.mpps = packets / elapsed / 1e6;
  r.gbps = static_cast<double>(total_bytes.load(std::memory_order_relaxed)) * 8.0 / elapsed / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  const bool telemetry = bench::parse_telemetry_flag(&argc, argv);
  bench::print_title("sharded monitor scaling on the host CPU",
                     "software analogue of Table V's multi-ME scaling");

  const auto packets_per_thread =
      static_cast<std::uint64_t>(1'000'000 * bench::scale());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads available: " << hw << "\n\n";

  stats::TextTable table({"threads", "Mpps", "Gbps", "speedup"});
  double base_mpps = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    if (threads > hw * 2) break;
    const RunResult r = run(threads, packets_per_thread);
    if (threads == 1) base_mpps = r.mpps;
    table.add_row({std::to_string(threads), stats::fmt(r.mpps, 2),
                   stats::fmt(r.gbps, 2),
                   stats::fmt(r.mpps / base_mpps, 2) + "x"});
  }
  table.print(std::cout);
  if (hw >= 4) {
    std::cout << "\nscaling follows the same near-linear shape as the paper's\n"
                 "ME scaling: per-packet work is independent per flow, and\n"
                 "shards keep lock contention off the hot path.\n";
  } else {
    std::cout << "\n(this machine exposes only " << hw
              << " hardware thread(s); thread counts beyond that measure\n"
                 "oversubscription, not scaling -- run on a multicore host\n"
                 "to see the near-linear shape of the paper's ME scaling.)\n";
  }
  if (telemetry) bench::dump_telemetry_snapshot();
  return 0;
}
