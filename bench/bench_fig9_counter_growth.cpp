// Fig. 9 reproduction: counter growth as a function of flow volume -- the
// scalability argument.  A full-size (SD) counter's value grows with slope
// one; SAC's stored estimation part grows linearly with a slope below one
// (scaled down by 2^(r*mode)); DISCO's counter value is logarithmic in the
// volume.  All three are *measured* by running the real data structures.
#include <iostream>

#include "bench_common.hpp"
#include "core/disco.hpp"
#include "counters/sac.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

int main() {
  using namespace disco;
  bench::print_title("counter value / bits required vs flow volume",
                     "paper Fig. 9");

  // One provisioning point for the whole sweep, as a deployment would have:
  // DISCO at b = 1.002; SAC with a 13-bit estimation part and 3 mode bits.
  const core::DiscoParams params(1.002);
  counters::SacArray sac(counters::SacArray::Config{1, 16, 13, 1});
  util::Rng rng(9);

  std::uint64_t disco_c = 0;
  std::uint64_t fed = 0;

  stats::TextTable table({"flow volume (B)", "SD value (slope 1)", "SD bits",
                          "SAC A-part", "SAC bits", "DISCO counter",
                          "DISCO bits"});
  for (std::uint64_t volume = 1024; volume <= (std::uint64_t{1} << 30);
       volume <<= 2) {
    // Continue feeding the same counters up to the next volume point.
    while (fed < volume) {
      const std::uint64_t l = std::min<std::uint64_t>(1024, volume - fed);
      disco_c = params.update(disco_c, l, rng);
      sac.add(0, l, rng);
      fed += l;
    }
    const std::uint64_t sac_a = sac.estimation_part(0);
    const int sac_bits = 3 + util::bit_width_u64(sac_a);  // mode + used A bits
    table.add_row({std::to_string(volume), std::to_string(volume),
                   std::to_string(util::bit_width_u64(volume)),
                   std::to_string(sac_a), std::to_string(sac_bits),
                   std::to_string(disco_c),
                   std::to_string(util::bit_width_u64(disco_c))});
  }
  table.print(std::cout);
  std::cout << "\nSD's value doubles with the volume (slope one); SAC scales\n"
               "the stored mantissa down by 2^(r*mode) but still grows\n"
               "linearly between renormalisations; DISCO's counter grows only\n"
               "logarithmically -- the larger the flow, the larger DISCO's\n"
               "memory gain, and the curve is concave in the volume\n"
               "(paper Fig. 9).  f(0) = 0 and f(1) = 1 also mean DISCO never\n"
               "loses to SD/SAC on the smallest flows.\n";
  return 0;
}
