// Fig. 3 reproduction: coefficient of variation versus the parameter b --
// smaller b means smaller relative error (and a larger counter).  Closed
// form from Corollary 1 plus the asymptotic Theorem 2 value at large S, with
// a Monte-Carlo spot check per b.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/disco.hpp"
#include "core/theory.hpp"
#include "stats/table.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

double simulate_estimate_cv(double b, std::uint64_t traffic, int runs,
                            disco::util::Rng& rng) {
  disco::core::DiscoParams params(b);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < traffic) {
      c = params.update(c, 512, rng);
      sent += 512;
    }
    const double est = params.estimate(c);
    sum += est;
    sum2 += est * est;
  }
  const double mean = sum / runs;
  const double var = sum2 / runs - mean * mean;
  return std::sqrt(std::max(0.0, var)) / mean;
}

}  // namespace

int main() {
  using namespace disco;
  bench::print_title("coefficient of variation vs parameter b",
                     "paper Fig. 3 / Corollary 1");

  stats::TextTable table({"b", "bound sqrt((b-1)/(b+1))", "e @ S=4096 (theta=512)",
                          "simulated estimator cv", "counter for 1 GB flow"});
  util::Rng rng(13);
  const int runs = static_cast<int>(400 * bench::scale());
  for (double b : {1.0005, 1.001, 1.002, 1.005, 1.01, 1.02, 1.05, 1.1}) {
    const util::GeometricScale scale(b);
    table.add_row(
        {stats::fmt(b, 4), stats::fmt(core::theory::cv_bound(b), 4),
         stats::fmt(core::theory::coefficient_of_variation(b, 4096, 512), 4),
         stats::fmt(simulate_estimate_cv(b, 2000000, runs, rng), 4),
         std::to_string(static_cast<std::uint64_t>(scale.f_inv(1e9)) + 1)});
  }
  table.print(std::cout);
  std::cout << "\nsmaller b -> smaller relative error but a larger counter\n"
               "(paper Fig. 3): the accuracy/memory dial of DISCO.\n";
  return 0;
}
