// Fig. 6 reproduction: MAXIMUM relative error (worst case over all flows)
// vs counter size, flow volume counting, DISCO vs SAC.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("maximum relative error, flow volume counting",
                     "paper Fig. 6");
  const auto flows = bench::real_trace_flows();
  bench::print_workload_summary("real-trace model (NLANR OC-192 stand-in)", flows);
  std::cout << '\n';

  const std::vector<std::string> methods = {"DISCO", "DISCO-fixed", "SAC"};
  const std::vector<int> bits = {8, 9, 10, 11, 12};
  const auto cells = bench::run_bits_sweep(flows, stats::CountingMode::kVolume,
                                           methods, bits, 601);
  bench::print_sweep_metric(
      cells, methods, bits,
      [](const stats::AccuracyResult& r) { return r.errors.maximum; }, "R_max");
  std::cout << "\npaper Fig. 6 shape: DISCO more accurate than SAC even in\n"
               "the worst case, both improving with counter size.\n";
  return 0;
}
