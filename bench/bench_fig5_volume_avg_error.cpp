// Fig. 5 reproduction: average relative error vs counter size for flow
// VOLUME counting on the real-trace stand-in -- DISCO vs SAC (plus the
// fixed-point DISCO path the paper's NP implementation runs).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("average relative error, flow volume counting",
                     "paper Fig. 5");
  const auto flows = bench::real_trace_flows();
  bench::print_workload_summary("real-trace model (NLANR OC-192 stand-in)", flows);
  std::cout << '\n';

  const std::vector<std::string> methods = {"DISCO", "DISCO-fixed", "SAC"};
  const std::vector<int> bits = {8, 9, 10, 11, 12};
  const auto cells = bench::run_bits_sweep(flows, stats::CountingMode::kVolume,
                                           methods, bits, 501);
  bench::print_sweep_metric(
      cells, methods, bits,
      [](const stats::AccuracyResult& r) { return r.errors.average; }, "R_bar");
  std::cout << "\npaper Fig. 5 shape: both curves fall with counter size and\n"
               "DISCO sits below SAC at every budget, with the margin\n"
               "narrowing as counters grow.\n";
  return 0;
}
