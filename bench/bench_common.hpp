// Shared scaffolding for the paper-reproduction benches.
//
// Every bench binary prints the rows/series of one paper table or figure.
// Workload sizes default to a laptop-friendly scale that preserves the
// paper's distributions; set DISCO_BENCH_SCALE (a float, default 1.0) to
// grow or shrink every population proportionally, e.g.
//
//   DISCO_BENCH_SCALE=25 ./bench_fig5_volume_avg_error   # ~paper-size trace
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "stats/experiment.hpp"
#include "stats/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"

namespace disco::bench {

/// Strips `--telemetry` from argv if present and enables runtime telemetry
/// (the metrics stay zeroed otherwise -- see src/telemetry/metrics.hpp).
/// Returns whether the flag was given, so mains can pair it with
/// dump_telemetry_snapshot() after the workload.  Safe to call before
/// benchmark::Initialize, which rejects flags it does not know.
inline bool parse_telemetry_flag(int* argc, char** argv) {
  bool found = false;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      found = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  if (found) telemetry::set_enabled(true);
  return found;
}

/// Prints the process-wide metric registry as JSON (docs/telemetry.md has
/// the schema).  With telemetry compiled out this prints an empty snapshot.
inline void dump_telemetry_snapshot(std::ostream& out = std::cout) {
  out << telemetry::to_json(telemetry::Registry::global().snapshot()) << "\n";
}

/// Global scale multiplier from DISCO_BENCH_SCALE (default 1.0).
inline double scale() {
  if (const char* env = std::getenv("DISCO_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline std::uint32_t scaled(std::uint32_t base) {
  const double s = static_cast<double>(base) * scale();
  return s < 1.0 ? 1u : static_cast<std::uint32_t>(s);
}

/// The real-trace stand-in at bench scale (paper: 100,728 flows; default
/// here: 4,000 -- DISCO_BENCH_SCALE=25 restores paper size).
inline std::vector<trace::FlowRecord> real_trace_flows(std::uint64_t seed = 1001) {
  util::Rng rng(seed);
  return trace::real_trace_model().make_flows(scaled(4000), rng);
}

inline void print_workload_summary(const std::string& name,
                                   const std::vector<trace::FlowRecord>& flows) {
  const auto s = trace::summarize(flows);
  std::cout << "# workload: " << name << " -- " << s.flow_count << " flows, "
            << s.total_packets << " packets, " << s.total_bytes << " bytes, "
            << "mean flow " << static_cast<std::uint64_t>(s.mean_bytes_per_flow)
            << " B / " << stats::fmt(s.mean_packets_per_flow, 1) << " pkts\n";
}

inline void print_title(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "==============================================================\n";
}

/// One (method x bits) accuracy grid over a fixed trace -- the computation
/// behind Figs. 5-8 and Table II.
struct SweepCell {
  std::string method;
  int bits = 0;
  stats::AccuracyResult result;
};

inline std::vector<SweepCell> run_bits_sweep(
    const std::vector<trace::FlowRecord>& flows, stats::CountingMode mode,
    const std::vector<std::string>& methods, const std::vector<int>& bit_sizes,
    std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (const auto& name : methods) {
    for (int bits : bit_sizes) {
      const auto method = stats::make_method(name);
      SweepCell cell;
      cell.method = name;
      cell.bits = bits;
      cell.result = stats::run_accuracy(*method, flows, mode, bits, seed);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

/// Renders one error metric of a sweep as a bits-by-method table.
template <typename MetricFn>
void print_sweep_metric(const std::vector<SweepCell>& cells,
                        const std::vector<std::string>& methods,
                        const std::vector<int>& bit_sizes, MetricFn metric,
                        const std::string& metric_name) {
  std::vector<std::string> headers = {"counter bits"};
  for (const auto& m : methods) headers.push_back(m + " " + metric_name);
  stats::TextTable table(headers);
  for (int bits : bit_sizes) {
    std::vector<std::string> row = {std::to_string(bits)};
    for (const auto& m : methods) {
      for (const auto& cell : cells) {
        if (cell.method == m && cell.bits == bits) {
          row.push_back(stats::fmt(metric(cell.result), 4));
        }
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace disco::bench
