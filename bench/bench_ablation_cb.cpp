// Ablation: Counter Braids versus (and composed with) DISCO.
//
// CB (the paper's reference [14]) shares small counters among flows and
// decodes exact counts offline by message passing; DISCO gives approximate
// per-packet estimates from per-flow counters.  This bench measures the
// trade on the same workload:
//   * memory at equal flow population,
//   * exactness vs bounded relative error,
//   * CB's load threshold (decode success vs layer-1 provisioning),
//   * the composition: braiding DISCO's small counter values instead of raw
//     byte counts, which shrinks CB's layer-1 depth.
#include <iostream>

#include "bench_common.hpp"
#include "counters/counter_braids.hpp"
#include "stats/experiment.hpp"
#include "util/math.hpp"

int main() {
  using namespace disco;
  bench::print_title("Counter Braids vs / with DISCO",
                     "paper reference [14], complementarity claim");

  util::Rng rng(314);
  const std::uint32_t flow_count = bench::scaled(1200);
  const auto flows = trace::scenario1().make_flows(flow_count, rng);
  std::vector<std::uint64_t> truth(flow_count);
  std::uint64_t max_flow = 1;
  for (const auto& f : flows) {
    truth[f.id] = f.bytes();
    max_flow = std::max(max_flow, truth[f.id]);
  }
  bench::print_workload_summary("scenario 1", flows);
  std::cout << '\n';

  // --- CB on raw byte counts, sweeping layer-1 provisioning ----------------
  stats::TextTable cb_table({"layer-1 counters / flow", "layer-1 bits",
                             "bits/flow", "decode", "exact flows"});
  for (double ratio : {1.2, 1.5, 2.0}) {
    counters::CounterBraids::Config config;
    config.flow_capacity = flow_count;
    config.layer1_counters = static_cast<std::size_t>(flow_count * ratio);
    config.layer1_bits = 16;
    counters::CounterBraids cb(config);
    for (const auto& f : flows) {
      for (auto l : f.lengths) cb.add(f.id, l);
    }
    const auto decoded = cb.decode(200);
    std::size_t exact = 0;
    for (std::uint32_t i = 0; i < flow_count; ++i) {
      if (decoded.counts[i] == truth[i]) ++exact;
    }
    cb_table.add_row(
        {stats::fmt(ratio, 1), std::to_string(config.layer1_bits),
         stats::fmt(static_cast<double>(cb.storage_bits()) / flow_count, 1),
         decoded.verified ? "verified exact" : "NOT verified",
         std::to_string(exact) + "/" + std::to_string(flow_count)});
  }
  cb_table.print(std::cout);

  // --- DISCO on the same workload -------------------------------------------
  const auto method = stats::make_method("DISCO");
  const auto rd = stats::run_accuracy(*method, flows, stats::CountingMode::kVolume,
                                      12, 314);
  std::cout << "\nDISCO, 12 bits/flow: avg relative error "
            << stats::fmt(rd.errors.average, 4) << ", on-line per-packet "
            << "estimates, no decode step.\n\n";

  // --- composition: braid DISCO counter values -------------------------------
  // DISCO counters are ~12-bit integers regardless of flow volume, so the
  // braid's layer-1 depth shrinks from byte scale to counter scale.
  {
    const auto disco_method = stats::make_method("DISCO");
    disco_method->prepare(flow_count, 12, max_flow);
    util::Rng update_rng(314);
    counters::CounterBraids::Config config;
    config.flow_capacity = flow_count;
    config.layer1_counters = flow_count * 2;
    config.layer1_bits = 12;
    counters::CounterBraids braid(config);
    for (const auto& f : flows) {
      for (auto l : f.lengths) disco_method->add(f.id, l, update_rng);
    }
    std::size_t exact = 0;
    for (std::uint32_t i = 0; i < flow_count; ++i) {
      braid.add(i, disco_method->counter_value(i));
    }
    const auto decoded = braid.decode(200);
    for (std::uint32_t i = 0; i < flow_count; ++i) {
      if (decoded.counts[i] == disco_method->counter_value(i)) ++exact;
    }
    std::cout << "DISCO x CB: braiding the DISCO counter values costs "
              << stats::fmt(static_cast<double>(braid.storage_bits()) / flow_count, 1)
              << " bits/flow, decode "
              << (decoded.verified ? "verified exact" : "NOT verified") << " ("
              << exact << "/" << flow_count << " counters recovered), and the\n"
              << "recovered counters reproduce DISCO's estimates exactly --\n"
              << "CB supplies storage sharing, DISCO supplies value\n"
              << "compression; the paper's complementarity claim holds.\n";
  }
  return 0;
}
