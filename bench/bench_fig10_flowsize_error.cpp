// Fig. 10 reproduction: per-flow relative error for flow SIZE counting
// (packets per flow) under equal counter budgets -- DISCO (which degenerates
// to ANLS here) vs SAC (which degenerates to Better NetFlow).  The paper
// shows per-flow scatters; we print the scatter summarised into flow-size
// bins plus overall metrics.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("per-flow relative error, flow size counting",
                     "paper Fig. 10");
  const auto flows = bench::real_trace_flows();
  bench::print_workload_summary("real-trace model (NLANR OC-192 stand-in)", flows);
  std::cout << '\n';

  const int bits = 10;
  const auto disco_method = stats::make_method("DISCO");
  // Both readings of the paper's "k = 3" (see counters/sac.hpp): a 3-bit
  // exponent with a 7-bit mantissa (our default; matches Figs. 5-7), and a
  // 3-bit mantissa with a 7-bit exponent -- the Better-NetFlow-like variant
  // the Fig. 10 scatter most resembles.
  const auto sac_method = stats::make_method("SAC");
  stats::SacMethod sac3m(/*exponent_bits=*/bits - 3);
  const auto rd =
      stats::run_accuracy(*disco_method, flows, stats::CountingMode::kSize, bits, 1001);
  const auto rs =
      stats::run_accuracy(*sac_method, flows, stats::CountingMode::kSize, bits, 1001);
  const auto rs3 =
      stats::run_accuracy(sac3m, flows, stats::CountingMode::kSize, bits, 1001);

  // Bin flows by true size (log scale) and report mean error per bin.
  struct Bin {
    double disco_err = 0.0;
    double sac_err = 0.0;
    double sac3_err = 0.0;
    int count = 0;
  };
  std::vector<Bin> bins(24);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rd.truths[i] == 0) continue;
    const auto truth = static_cast<double>(rd.truths[i]);
    const auto bin = static_cast<std::size_t>(
        std::min(23.0, std::log2(truth)));
    bins[bin].disco_err += std::fabs(rd.estimates[i] - truth) / truth;
    bins[bin].sac_err += std::fabs(rs.estimates[i] - truth) / truth;
    bins[bin].sac3_err += std::fabs(rs3.estimates[i] - truth) / truth;
    ++bins[bin].count;
  }

  stats::TextTable table({"flow size bin (pkts)", "#flows", "DISCO mean R",
                          "SAC (7b mantissa)", "SAC (3b mantissa, BNF-like)"});
  for (std::size_t bin = 0; bin < bins.size(); ++bin) {
    if (bins[bin].count == 0) continue;
    const auto lo = static_cast<std::uint64_t>(std::exp2(bin));
    const auto hi = static_cast<std::uint64_t>(std::exp2(bin + 1)) - 1;
    table.add_row({std::to_string(lo) + "-" + std::to_string(hi),
                   std::to_string(bins[bin].count),
                   stats::fmt(bins[bin].disco_err / bins[bin].count, 4),
                   stats::fmt(bins[bin].sac_err / bins[bin].count, 4),
                   stats::fmt(bins[bin].sac3_err / bins[bin].count, 4)});
  }
  table.print(std::cout);

  std::cout << "\noverall:        DISCO(=ANLS)  SAC(7b)   SAC(3b/BNF)\n"
            << "  average R     " << stats::fmt(rd.errors.average, 4) << "        "
            << stats::fmt(rs.errors.average, 4) << "    "
            << stats::fmt(rs3.errors.average, 4) << '\n'
            << "  maximum R     " << stats::fmt(rd.errors.maximum, 4) << "        "
            << stats::fmt(rs.errors.maximum, 4) << "    "
            << stats::fmt(rs3.errors.maximum, 4) << '\n'
            << "\npaper Fig. 10 (DISCO uniformly below SAC): reproduced\n"
               "against the BNF-like variant in every bin, and against the\n"
               "7-bit-mantissa variant for flows above ~256 packets; that\n"
               "variant stores small flows exactly, a regime the paper's\n"
               "scatter does not separate out.  See EXPERIMENTS.md.\n";
  return 0;
}
