// Fig. 7 reproduction: 0.95-optimistic relative error vs counter size, flow
// volume counting -- the probabilistic error guarantee R_o(0.95).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace disco;
  bench::print_title("0.95-optimistic relative error, flow volume counting",
                     "paper Fig. 7");
  const auto flows = bench::real_trace_flows();
  bench::print_workload_summary("real-trace model (NLANR OC-192 stand-in)", flows);
  std::cout << '\n';

  const std::vector<std::string> methods = {"DISCO", "DISCO-fixed", "SAC"};
  const std::vector<int> bits = {8, 9, 10, 11, 12};
  const auto cells = bench::run_bits_sweep(flows, stats::CountingMode::kVolume,
                                           methods, bits, 701);
  bench::print_sweep_metric(
      cells, methods, bits,
      [](const stats::AccuracyResult& r) { return r.errors.optimistic95; },
      "R_o(0.95)");
  std::cout << "\n95% of counters stay below the printed error; DISCO's\n"
               "guarantee dominates SAC's at every budget (paper Fig. 7).\n";
  return 0;
}
