// Ablation: Log&Exp table resolution vs estimation accuracy and memory.
//
// The paper fixes one design point (3 K entries, 20-bit power / 12-bit log
// fields = 96 Kb).  This bench sweeps both knobs to show the paper's point
// sits at the knee: fewer mantissa bits start costing accuracy, more bits
// cost memory with no measurable gain (the statistical error floor of
// Theorem 2 dominates).
#include <iostream>

#include "bench_common.hpp"
#include "core/disco_fixed.hpp"
#include "util/log_table.hpp"
#include "util/math.hpp"

namespace {

double mean_error(const disco::util::LogExpTable& table, std::uint64_t truth,
                  int runs, disco::util::Rng& rng) {
  const disco::core::FixedPointDisco logic(table);
  double err = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < truth) {
      const std::uint64_t l = 64 + (sent * 131) % 1400;
      c = logic.update(c, std::min(l, truth - sent), rng);
      sent += std::min(l, truth - sent);
    }
    err += disco::util::relative_error(logic.estimate(c),
                                       static_cast<double>(truth));
  }
  return err / runs;
}

}  // namespace

int main() {
  using namespace disco;
  bench::print_title("fixed-point table resolution ablation",
                     "design choice behind the paper's 96 Kb table");

  const std::uint64_t max_flow = std::uint64_t{1} << 28;
  const int counter_bits = 12;
  const double b = util::choose_b(max_flow, counter_bits);
  const std::uint64_t truth = 20'000'000;
  util::Rng rng(66);
  const int runs = static_cast<int>(400 * bench::scale());

  std::cout << "b = " << stats::fmt(b, 6) << ", flow = " << truth
            << " B, counter = " << counter_bits << " bits\n\n";

  stats::TextTable table({"entries", "pow bits", "log bits", "table memory",
                          "avg relative error"});
  struct Point {
    int entries;
    int pow_bits;
    int log_bits;
  };
  const std::vector<Point> points = {
      {3072, 8, 6},  {3072, 12, 8}, {3072, 16, 10}, {3072, 20, 12},
      {3072, 24, 16}, {1024, 20, 12}, {6144, 20, 12},
  };
  for (const auto& p : points) {
    util::LogExpTable::Config config;
    config.b = b;
    config.entries = p.entries;
    config.pow_mantissa_bits = p.pow_bits;
    config.log_mantissa_bits = p.log_bits;
    const util::LogExpTable t(config);
    table.add_row({std::to_string(p.entries), std::to_string(p.pow_bits),
                   std::to_string(p.log_bits),
                   std::to_string(t.storage_bits() / 1024) + " Kb",
                   stats::fmt(mean_error(t, truth, runs, rng), 4)});
  }
  table.print(std::cout);
  std::cout << "\nthe paper's 20/12-bit 3 K-entry point is at the knee: error\n"
               "saturates at the Theorem 2 statistical floor, so extra table\n"
               "bits buy nothing, while 8/6-bit fields visibly hurt.\n";
  return 0;
}
