#!/usr/bin/env python3
"""DISCO invariant linter.

Enforces repo-specific correctness invariants that neither the compiler nor
clang-tidy can express.  It is a regex-AST hybrid: comments and string
literals are stripped, brace depth is tracked to attribute each line to its
enclosing function, and the rules below are applied to the result.  No
dependencies beyond the Python 3 standard library.

Rules
-----
hot-path-transcendental
    Hot-path translation units (the per-packet DISCO update path) must not
    call std transcendental math functions.  PR 3 replaced them with the
    precomputed DecisionTable; a reintroduced std::log would silently undo
    that work.  Per-file whitelists name the cold-path functions (table
    construction, statistics) that legitimately use them.

atomic-memory-order
    Every std::atomic operation in src/pipeline and src/telemetry must name
    an explicit std::memory_order.  The SPSC ring and the telemetry counters
    are correctness- and performance-sensitive; a defaulted seq_cst argument
    is either an accidental fence on the fast path or an unreviewed ordering
    decision.

rng-call-site
    util::Rng draw methods may only be called from the canonical decide/
    update/merge functions.  The decision-table fast path is bit-identical
    to the transcendental path *only* because both consume exactly one draw
    per update; a stray draw anywhere else silently desynchronises the RNG
    stream contract (see FlowMonitor.IngestBatchMatchesSequentialBursts).

header-self-contained
    Headers under src/ must directly include the standard headers for the
    std:: vocabulary types they use, rather than leaning on transitive
    includes that a refactor elsewhere can remove.

simd-intrinsics-confined
    Raw vector intrinsics (_mm*/_mm256*/__m128i/...) may appear only in the
    dedicated probe kernel header src/flowtable/tag_probe.hpp.  Everything
    else must go through its portable scan<UseSimd>() wrapper -- that is
    what keeps the scalar fallback bit-identical (the differential suite
    compares the two engines) and keeps -DDISCO_SIMD=OFF builds compiling
    on any target.

atomic-shim-confined
    Raw std::atomic / std::atomic_flag / std::atomic_thread_fence may
    appear only in src/util/atomic.hpp (the shim that defines them away)
    and under src/verify/ (the model checker's own implementation).
    Everything else declares util::atomic / util::shared and fences with
    util::atomic_fence, so a -DDISCO_MODELCHECK build routes every
    operation through the schedule-exploring checker (docs/
    static-analysis.md, "Model checking").  A raw std::atomic elsewhere is
    invisible to the checker: the code still compiles and runs, but its
    interleavings are silently never explored.  std::memory_order stays
    legal everywhere -- the shim deliberately keeps the standard ordering
    vocabulary.

Suppressions
------------
A finding can be suppressed with a justification on the same line or the
line above::

    // disco-lint: allow(rule-id) reason why this is legitimate

A suppression without a reason is itself an error: the whole point is that
exceptions are documented.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Rule configuration.  Paths are '/'-separated suffixes so the same config
# applies to real sources (src/core/disco.cpp) and to test fixtures
# (tests/lint_fixtures/bad/src/core/disco.cpp).
# --------------------------------------------------------------------------

RULE_TRANSCENDENTAL = "hot-path-transcendental"
RULE_MEMORY_ORDER = "atomic-memory-order"
RULE_RNG = "rng-call-site"
RULE_HEADER = "header-self-contained"
RULE_SIMD = "simd-intrinsics-confined"
RULE_ATOMIC_SHIM = "atomic-shim-confined"

ALL_RULES = (RULE_TRANSCENDENTAL, RULE_MEMORY_ORDER, RULE_RNG, RULE_HEADER,
             RULE_SIMD, RULE_ATOMIC_SHIM)

# Hot-path files -> functions allowed to call transcendentals.  These are
# the cold-path helpers inside otherwise-hot translation units.
HOT_PATH_FILES: Dict[str, Set[str]] = {
    "src/core/disco.cpp": {"confidence_interval", "interval_for_estimate"},
    "src/core/decision_table.cpp": set(),
    "src/core/decision_table.hpp": set(),
    "src/pipeline/pipeline.cpp": set(),
    "src/pipeline/packet_ring.hpp": set(),
}

TRANSCENDENTALS = (
    "log|log2|log10|log1p|exp|exp2|expm1|pow|sqrt|cbrt|hypot|"
    "sin|cos|tan|asin|acos|atan|atan2|sinh|cosh|tanh|"
    "erf|erfc|tgamma|lgamma"
)
TRANSCENDENTAL_RE = re.compile(
    r"(?<![\w.>])(?:std\s*::\s*)?(" + TRANSCENDENTALS + r")\s*\("
)

# Directories whose atomics must spell out their memory_order.
ATOMIC_DIRS = ("src/pipeline/", "src/telemetry/")

ATOMIC_METHODS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    "compare_exchange_weak|compare_exchange_strong"
)
ATOMIC_CALL_RE = re.compile(r"\.\s*(" + ATOMIC_METHODS + r")\s*\(")
# Declarations may spell the raw type or the model-check shim alias
# (util::atomic, see atomic-shim-confined); both bind operator-form checks.
ATOMIC_DECL_RE = re.compile(
    r"(?:std|util)\s*::\s*atomic\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>\s+(\w+)"
)

# Directories where Rng draws are policed, and the canonical draw sites.
RNG_DIRS = ("src/core/", "src/flowtable/", "src/pipeline/")
RNG_ALLOWED: Dict[str, Set[str]] = {
    "src/core/disco.hpp": {"update"},
    # rescale_once / saturate_or_rescale: the RescaleB remap's randomized
    # rounding (cold path, docs/robustness.md); draws from the same
    # measurement stream as the update that triggered it, deliberately.
    "src/core/disco.cpp": {"merge", "rescale_once", "saturate_or_rescale"},
    "src/core/disco_fixed.hpp": {"update"},
    "src/core/regulation.hpp": {"update"},
    # Pressure-policy decisions (RAP coin, victim sampling) draw ONLY from
    # the monitor's dedicated pressure_rng_ stream, never the measurement
    # stream -- confining the draws to these two cold-path functions is what
    # keeps the Drop default bit-identical to pre-policy builds.
    "src/flowtable/monitor.cpp": {"admit_under_pressure", "select_victim"},
    # Additive-error counters (core/additive.hpp): the grid rounding in
    # add() is the family's one-draw-per-update site; halve_all/shift_down/
    # merge are the cold-path unbiased remaps (the additive analogue of
    # RescaleB's randomized rounding).
    "src/core/additive.hpp": {"add"},
    "src/core/additive.cpp": {"halve_all", "shift_down", "merge"},
}
RNG_DRAW_RE = re.compile(
    r"\b(\w*[Rr]ng\w*)\s*(?:\.|->)\s*"
    r"(next|next_double|bernoulli|uniform_u64|uniform_double|fork)\s*\("
)

# The one file allowed to use raw vector intrinsics: the probe kernel.
# Suffix-matched like RNG_ALLOWED, so fixture trees exercise the rule.
SIMD_ALLOWED_FILES = ("src/flowtable/tag_probe.hpp",)
SIMD_INTRINSIC_RE = re.compile(r"\b(_mm\d*_\w+|__m\d+[a-z]*)\b")

# Where raw std:: atomics are legitimate: the shim that aliases them away
# and the model checker they get routed to.  Suffix-matched so fixture
# trees exercise the rule and its exemptions.
ATOMIC_SHIM_ALLOWED_FILES = ("src/util/atomic.hpp",)
ATOMIC_SHIM_ALLOWED_DIRS = ("src/verify/",)
ATOMIC_SHIM_RE = re.compile(
    r"\bstd\s*::\s*(atomic_thread_fence|atomic_signal_fence|atomic_flag|"
    r"atomic_ref|atomic)\b"
)

# std:: vocabulary type -> standard header that must be directly included.
HEADER_REQUIREMENTS: Sequence[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bstd\s*::\s*atomic\b|\bstd\s*::\s*memory_order"), "atomic"),
    (re.compile(r"\bstd\s*::\s*(mutex|lock_guard|unique_lock|scoped_lock)\b"),
     "mutex"),
    (re.compile(r"\bstd\s*::\s*thread\b"), "thread"),
    (re.compile(r"\bstd\s*::\s*condition_variable\b"), "condition_variable"),
    (re.compile(r"\bstd\s*::\s*optional\b"), "optional"),
    (re.compile(r"\bstd\s*::\s*string_view\b"), "string_view"),
    (re.compile(r"\bstd\s*::\s*vector\b"), "vector"),
    (re.compile(r"\bstd\s*::\s*(unique_ptr|shared_ptr|make_unique|make_shared)\b"),
     "memory"),
    (re.compile(r"\bstd\s*::\s*u?int(?:8|16|32|64)_t\b"), "cstdint"),
]

# Headers that legitimately re-export a std type as part of their contract
# (util::Mutex wraps std::mutex; including <mutex> there is the point).
HEADER_PROVIDES: Dict[str, Set[str]] = {
    "src/util/thread_annotations.hpp": set(),
}

SUPPRESS_RE = re.compile(
    r"//\s*disco-lint:\s*allow\(\s*([\w-]+)\s*\)\s*[-: ]*\s*(.*)"
)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "else", "do", "try",
    "sizeof", "alignof", "alignas", "decltype", "static_assert", "new",
    "delete", "throw", "case", "default",
}
QUALIFIER_TOKENS = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "try", "&", "&&", "->",
}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexical preprocessing.
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines
    and column positions so line attribution stays exact."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"':
            out[i] = " "
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        elif c == "'":
            # Digit separator (1'000'000) vs char literal.
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() and i + 1 < n and (text[i + 1].isalnum()
                                                 or text[i + 1] == "_"):
                out[i] = " "  # separator: drop quote, keep digits
                i += 1
                continue
            out[i] = " "
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\" and i + 1 < n:
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def blank_preprocessor(stripped: str) -> Tuple[str, List[str]]:
    """Blank out preprocessor lines (after comment stripping), returning the
    code text and the list of directive lines for include parsing."""
    lines = stripped.split("\n")
    directives = []
    for idx, line in enumerate(lines):
        logical = line.lstrip()
        if logical.startswith("#"):
            directives.append(line)
            lines[idx] = ""
    return "\n".join(lines), directives


# --------------------------------------------------------------------------
# Enclosing-function attribution.
# --------------------------------------------------------------------------

_FUNC_NAME_RE = re.compile(r"((?:~?\w+|operator\s*[^\s(]+)(?:\s*::\s*~?\w+)*)\s*$")


def _classify_head(head: str) -> Tuple[str, Optional[str]]:
    """Classify the text between the previous ';'/'{'/'}' and an opening
    brace.  Returns (kind, name) where kind is one of 'namespace', 'type',
    'function', 'lambda', 'block'."""
    head = " ".join(head.split())
    # Strip access-specifier labels that precede a member declaration.
    head = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", head)
    if not head:
        return "block", None
    if re.match(r"^(inline\s+)?namespace(\s+[\w:]+)?$", head):
        return "namespace", None
    if re.search(r"\b(class|struct|union|enum)\b(?!.*\boperator\b)"
                 r"(?!.*[)=])", head):
        return "type", None
    # Constructor initialiser list: cut at the top-level ':' (not '::') that
    # follows the parameter list, so the backward scan sees the real header.
    depth = 0
    cut = -1
    k = 0
    while k < len(head):
        ch = head[k]
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == ":" and depth == 0:
            if k + 1 < len(head) and head[k + 1] == ":":
                k += 2
                continue
            if k > 0 and head[k - 1] == ":":
                k += 1
                continue
            if "(" in head[:k]:
                cut = k
                break
        k += 1
    if cut >= 0:
        head = head[:cut].rstrip()
    if head.endswith("="):
        return "block", None
    # Backward scan: drop trailing qualifiers, then expect a parenthesised
    # parameter list, then the function name.
    rest = head
    changed = True
    while changed:
        changed = False
        for token in QUALIFIER_TOKENS:
            if rest.endswith(token):
                rest = rest[: -len(token)].rstrip()
                changed = True
        m = re.search(r"->\s*[\w:<>,&*\s]+$", rest)
        if m and not rest.endswith(")"):
            rest = rest[: m.start()].rstrip()
            changed = True
    if rest.endswith("]"):  # lambda introducer with no parameter list
        return "lambda", None
    if not rest.endswith(")"):
        return "block", None
    # Match the parameter list parens backwards.
    depth = 0
    pos = len(rest) - 1
    while pos >= 0:
        if rest[pos] == ")":
            depth += 1
        elif rest[pos] == "(":
            depth -= 1
            if depth == 0:
                break
        pos -= 1
    if pos <= 0:
        return "block", None
    before = rest[:pos].rstrip()
    if before.endswith("]"):
        return "lambda", None
    m = _FUNC_NAME_RE.search(before)
    if not m:
        return "block", None
    name = m.group(1)
    last = re.split(r"\s*::\s*", name)[-1].replace(" ", "")
    if last in CONTROL_KEYWORDS:
        return "block", None
    return "function", last.lstrip("~")


def function_context(code: str) -> List[Optional[str]]:
    """For each line of comment-stripped code, the name of the nearest
    enclosing function (lambdas inherit their enclosing function's name),
    or None at namespace/class/file scope."""
    n_lines = code.count("\n") + 1
    context: List[Optional[str]] = [None] * n_lines
    stack: List[Tuple[str, Optional[str]]] = []  # (kind, current function)
    head_start = 0
    line = 0

    def current_function() -> Optional[str]:
        for kind, name in reversed(stack):
            if kind in ("function", "lambda"):
                return name
        return None

    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
            if line < n_lines:
                context[line] = current_function()
        elif c == "{":
            kind, name = _classify_head(code[head_start:i])
            if kind == "lambda":
                stack.append(("lambda", current_function()))
            elif kind == "function":
                stack.append(("function", name))
            else:
                stack.append((kind, current_function()))
            context[line] = current_function()
            head_start = i + 1
        elif c == "}":
            if stack:
                stack.pop()
            head_start = i + 1
            # Re-evaluate context for the remainder of this line.
            context_after = current_function()
            if context[line] is not None and context_after is None:
                pass  # closing line still attributed to the function
        elif c == ";":
            head_start = i + 1
        i += 1
    return context


# --------------------------------------------------------------------------
# Suppression handling.
# --------------------------------------------------------------------------

def collect_suppressions(raw_lines: Sequence[str], path: str,
                         findings: List[Finding]) -> Dict[int, Set[str]]:
    """Map line number (1-based) -> set of suppressed rule ids.  A
    suppression covers its own line and the next line (comment-above
    style)."""
    suppressed: Dict[int, Set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in ALL_RULES:
            findings.append(Finding(
                path, idx, "bad-suppression",
                f"unknown rule '{rule}' in suppression "
                f"(known: {', '.join(ALL_RULES)})"))
            continue
        if not reason:
            findings.append(Finding(
                path, idx, "bad-suppression",
                f"suppression of '{rule}' has no reason; write "
                f"'// disco-lint: allow({rule}) <why this is legitimate>'"))
            continue
        suppressed.setdefault(idx, set()).add(rule)
        suppressed.setdefault(idx + 1, set()).add(rule)
    return suppressed


# --------------------------------------------------------------------------
# Individual rules.  Each takes the preprocessed file and appends findings.
# --------------------------------------------------------------------------

def match_suffix(rel: str, table: Iterable[str]) -> Optional[str]:
    for suffix in table:
        if rel == suffix or rel.endswith("/" + suffix):
            return suffix
    return None


def check_transcendentals(rel: str, code_lines: Sequence[str],
                          context: Sequence[Optional[str]],
                          findings: List[Finding]) -> None:
    key = match_suffix(rel, HOT_PATH_FILES)
    if key is None:
        return
    allowed = HOT_PATH_FILES[key]
    for idx, line in enumerate(code_lines):
        for m in TRANSCENDENTAL_RE.finditer(line):
            func = context[idx]
            if func in allowed:
                continue
            where = f"in '{func}'" if func else "at file scope"
            findings.append(Finding(
                rel, idx + 1, RULE_TRANSCENDENTAL,
                f"std::{m.group(1)} {where}: hot-path files must use the "
                f"DecisionTable, not transcendental math "
                f"(allowed here: {sorted(allowed) or 'none'})"))


def balanced_args(text: str, start: int) -> str:
    """Return the argument text of a call whose '(' is at `start`,
    spanning lines if needed."""
    depth = 0
    for j in range(start, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:j]
    return text[start + 1:]


def check_memory_order(rel: str, code_lines: Sequence[str],
                       atomic_names: Set[str],
                       findings: List[Finding]) -> None:
    if not any(d in rel or rel.startswith(d.rstrip("/") + "/")
               for d in ATOMIC_DIRS):
        return
    joined = "\n".join(code_lines)
    decl_lines = set()
    for m in ATOMIC_DECL_RE.finditer(joined):
        decl_lines.add(joined.count("\n", 0, m.start()))
    # Method-style ops: anything with a .load/.store/... call in these
    # directories is an atomic in practice (aliased references included).
    for m in ATOMIC_CALL_RE.finditer(joined):
        paren = joined.index("(", m.end() - 1)
        args = balanced_args(joined, paren)
        if "memory_order" in args:
            continue
        line_no = joined.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            rel, line_no, RULE_MEMORY_ORDER,
            f".{m.group(1)}() without an explicit std::memory_order "
            f"(defaulted seq_cst is an unreviewed fence on the fast "
            f"path; spell out the ordering and justify it)"))
    for idx, line in enumerate(code_lines):
        # Operator-style ops on known atomic members: ++x, x++, x += v,
        # x = v all default to seq_cst.
        if idx in decl_lines:
            continue
        for name in atomic_names:
            if name not in line:
                continue
            pattern = (
                r"(\+\+\s*" + re.escape(name) + r"\b"
                r"|\b" + re.escape(name) + r"\s*\+\+"
                r"|--\s*" + re.escape(name) + r"\b"
                r"|\b" + re.escape(name) + r"\s*--"
                r"|\b" + re.escape(name) + r"\s*(?:[+\-|&^]|<<|>>)?=(?![=>]))"
            )
            if re.search(pattern, line):
                findings.append(Finding(
                    rel, idx + 1, RULE_MEMORY_ORDER,
                    f"operator-form atomic access to '{name}' (implicit "
                    f"seq_cst); use .load/.store/.fetch_* with an explicit "
                    f"std::memory_order"))


def check_rng_call_sites(rel: str, code_lines: Sequence[str],
                         context: Sequence[Optional[str]],
                         findings: List[Finding]) -> None:
    if not any(d in rel or rel.startswith(d.rstrip("/") + "/")
               for d in RNG_DIRS):
        return
    key = match_suffix(rel, RNG_ALLOWED)
    allowed = RNG_ALLOWED.get(key, set()) if key else set()
    for idx, line in enumerate(code_lines):
        for m in RNG_DRAW_RE.finditer(line):
            func = context[idx]
            if func in allowed:
                continue
            where = f"'{func}'" if func else "file scope"
            findings.append(Finding(
                rel, idx + 1, RULE_RNG,
                f"RNG draw {m.group(1)}.{m.group(2)}() in {where}: draws "
                f"are restricted to canonical decide/update functions so "
                f"the table-driven and transcendental paths consume "
                f"bit-identical RNG streams "
                f"(allowed here: {sorted(allowed) or 'none'})"))


def check_simd_confined(rel: str, code_lines: Sequence[str],
                        findings: List[Finding]) -> None:
    if not rel.startswith("src/") and "/src/" not in "/" + rel:
        return
    if any(rel == allowed or rel.endswith("/" + allowed)
           for allowed in SIMD_ALLOWED_FILES):
        return
    for idx, line in enumerate(code_lines):
        m = SIMD_INTRINSIC_RE.search(line)
        if m:
            findings.append(Finding(
                rel, idx + 1, RULE_SIMD,
                f"raw vector intrinsic '{m.group(0)}' outside "
                f"src/flowtable/tag_probe.hpp; route it through "
                f"tagprobe::scan<UseSimd>() so the scalar fallback stays "
                f"bit-identical and -DDISCO_SIMD=OFF keeps building"))


def check_atomic_shim_confined(rel: str, code_lines: Sequence[str],
                               findings: List[Finding]) -> None:
    if not rel.startswith("src/") and "/src/" not in "/" + rel:
        return
    if match_suffix(rel, ATOMIC_SHIM_ALLOWED_FILES):
        return
    if any(d in rel or rel.startswith(d) for d in ATOMIC_SHIM_ALLOWED_DIRS):
        return
    for idx, line in enumerate(code_lines):
        m = ATOMIC_SHIM_RE.search(line)
        if m:
            findings.append(Finding(
                rel, idx + 1, RULE_ATOMIC_SHIM,
                f"raw std::{m.group(1)} outside src/util/atomic.hpp and "
                f"src/verify/; declare util::atomic / util::shared and "
                f"fence with util::atomic_fence so -DDISCO_MODELCHECK "
                f"builds route this operation through the model checker "
                f"(docs/static-analysis.md)"))


def check_header_self_contained(rel: str, code: str,
                                directives: Sequence[str],
                                findings: List[Finding]) -> None:
    if not rel.endswith(".hpp"):
        return
    if "/src/" not in "/" + rel and not rel.startswith("src/"):
        return
    includes = set()
    for line in directives:
        m = re.match(r'\s*#\s*include\s*[<"]([^>"]+)[>"]', line)
        if m:
            includes.add(m.group(1))
    for pattern, header in HEADER_REQUIREMENTS:
        if header in includes:
            continue
        m = pattern.search(code)
        if not m:
            continue
        line_no = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            rel, line_no, RULE_HEADER,
            f"uses {m.group(0).strip()} but does not include <{header}> "
            f"directly (transitive includes are refactor-fragile)"))


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def collect_atomic_names(preprocessed: Dict[str, str]) -> Set[str]:
    names: Set[str] = set()
    for code in preprocessed.values():
        for m in ATOMIC_DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


def relpath_key(path: str, root: str) -> str:
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/")


def lint_files(paths: Sequence[str], root: str,
               rules: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    raw: Dict[str, List[str]] = {}
    code_text: Dict[str, str] = {}
    code_lines: Dict[str, List[str]] = {}
    directives: Dict[str, List[str]] = {}
    contexts: Dict[str, List[Optional[str]]] = {}
    suppressions: Dict[str, Dict[int, Set[str]]] = {}

    for path in paths:
        rel = relpath_key(path, root)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"lint_disco: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        raw[rel] = text.split("\n")
        stripped = strip_comments_and_strings(text)
        code, direct = blank_preprocessor(stripped)
        code_text[rel] = code
        code_lines[rel] = code.split("\n")
        directives[rel] = direct
        contexts[rel] = function_context(code)
        suppressions[rel] = collect_suppressions(raw[rel], rel, findings)

    atomic_names = collect_atomic_names(code_text)

    for rel in sorted(code_text):
        file_findings: List[Finding] = []
        if RULE_TRANSCENDENTAL in rules:
            check_transcendentals(rel, code_lines[rel], contexts[rel],
                                  file_findings)
        if RULE_MEMORY_ORDER in rules:
            check_memory_order(rel, code_lines[rel], atomic_names,
                               file_findings)
        if RULE_RNG in rules:
            check_rng_call_sites(rel, code_lines[rel], contexts[rel],
                                 file_findings)
        if RULE_HEADER in rules:
            check_header_self_contained(rel, code_text[rel],
                                        directives[rel], file_findings)
        if RULE_SIMD in rules:
            check_simd_confined(rel, code_lines[rel], file_findings)
        if RULE_ATOMIC_SHIM in rules:
            check_atomic_shim_confined(rel, code_lines[rel], file_findings)
        for f in file_findings:
            if f.rule in suppressions[rel].get(f.line, set()):
                continue
            findings.append(f)
    return findings


def gather_sources(targets: Sequence[str]) -> List[str]:
    out: List[str] = []
    for target in targets:
        if os.path.isfile(target):
            out.append(target)
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    out.append(os.path.join(dirpath, name))
    return out


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        description="DISCO invariant linter (see module docstring)")
    parser.add_argument("targets", nargs="*",
                        help="files or directories to lint "
                             "(default: <repo>/src)")
    parser.add_argument("--root", default=None,
                        help="path prefix stripped from reported paths "
                             "(default: repo root, inferred from this "
                             "script's location)")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"lint_disco: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(args.root) if args.root else repo_root
    targets = args.targets or [os.path.join(repo_root, "src")]
    files = gather_sources(targets)
    if not files:
        print("lint_disco: no source files found", file=sys.stderr)
        return 2

    findings = lint_files(files, root, rules)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_disco: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_disco: OK ({len(files)} files, "
          f"{len(rules)} rules)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
