// disco_collect: the aggregation tier's CLI -- N monitors, one answer.
//
//   disco_collect --spool FILE [FILE ...] [options]
//   disco_collect --listen PORT [options]
//
//   --spool FILE...    drain DRPT reports from these spool files (typically
//                      one per monitor process; see disco_monitor --spool)
//   --listen PORT      accept monitor connections on 127.0.0.1:PORT instead
//                      (0 picks an ephemeral port, printed on startup)
//   --expect R         listen mode: stop once R reports arrived (default 0:
//                      wait for --wait-ms, then stop)
//   --wait-ms T        listen mode: maximum collection time (default 10000)
//   --sites N          pre-register sites 0..N-1 so epoch finalisation
//                      waits for the whole known fleet even before every
//                      site's first report arrives (default 0: sites
//                      register on first ingest)
//   --top K            print the global top-K flows (default 10)
//   --confidence C     two-sided interval confidence level (default 0.95)
//   --window W         liveness window in epochs: a site lagging more than
//                      W epochs behind the fleet stops gating epoch
//                      finalisation (default 2)
//   --fallback-b B     effective base assumed for legacy v1/v2 reports
//                      (default 0: their flows get no interval)
//   --modules a,b,...  subscribe the named analysis modules ("all" for every
//                      built-in; docs/modules.md) to the merged epoch stream
//                      and print their reports
//   --json             machine-readable output document instead of text
//
// Prints global top-k with Theorem 2 aggregate confidence intervals, global
// totals, reconciled fleet pressure, and a per-site status table (liveness,
// lag, duplicates, epoch gaps) -- docs/collector.md documents the
// semantics.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collect/collector.hpp"
#include "collect/transport.hpp"
#include "modules/host.hpp"
#include "stats/table.hpp"
#include "util/thread_annotations.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: disco_collect --spool FILE [FILE ...] [--top K]"
               " [--confidence C] [--window W] [--fallback-b B]"
               " [--sites N] [--modules a,b,...|all] [--json]\n"
               "       disco_collect --listen PORT [--expect R]"
               " [--wait-ms T] [same options]\n";
  std::exit(2);
}

std::string ip_to_string(std::uint32_t ip) {
  std::ostringstream out;
  out << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
      << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return out.str();
}

std::string flow_label(const disco::flowtable::FiveTuple& t) {
  std::ostringstream out;
  out << ip_to_string(t.src_ip) << ':' << t.src_port << "->"
      << ip_to_string(t.dst_ip) << ':' << t.dst_port;
  return out.str();
}

void print_text(const disco::collect::Collector& collector, std::size_t top) {
  using disco::stats::fmt;
  const auto totals = collector.totals();
  std::cout << "reports: " << collector.reports_ingested()
            << ", epochs finalized: " << collector.epochs_finalized()
            << ", tracked flows: " << collector.tracked_flows() << "\n";
  std::cout << "global bytes: " << fmt(totals.bytes, 0);
  if (totals.interval_valid) {
    std::cout << "  [" << fmt(totals.bytes_low, 0) << ", "
              << fmt(totals.bytes_high, 0) << "]";
  } else {
    std::cout << "  [interval unavailable: legacy reports without"
                 " --fallback-b]";
  }
  std::cout << ", packets: " << fmt(totals.packets, 0) << "\n";
  const auto pressure = collector.pressure();
  std::cout << "fleet pressure: rejected " << pressure.flows_rejected
            << ", evicted " << pressure.flows_evicted << ", saturated "
            << pressure.counters_saturated << ", rescales "
            << pressure.rescale_events << "\n\n";

  disco::stats::TextTable flows_table(
      {"flow", "bytes", "ci", "packets", "sites"});
  for (const auto& g : collector.top_k(top)) {
    std::string interval = "-";
    if (g.interval_valid) {
      interval = "[";
      interval.append(fmt(g.bytes_low, 0))
          .append(", ")
          .append(fmt(g.bytes_high, 0))
          .append("]");
    }
    flows_table.add_row({flow_label(g.flow), fmt(g.bytes, 0), interval,
                         fmt(g.packets, 0), std::to_string(g.sites)});
  }
  flows_table.print(std::cout);

  std::cout << "\n";
  disco::stats::TextTable site_table({"site", "reports", "dup", "late",
                                      "reorder", "gaps", "legacy", "lag",
                                      "live", "b"});
  for (const auto& s : collector.sites()) {
    site_table.add_row({std::to_string(s.site_id),
                        std::to_string(s.reports),
                        std::to_string(s.duplicates),
                        std::to_string(s.late),
                        std::to_string(s.reordered),
                        std::to_string(s.epoch_gaps),
                        std::to_string(s.legacy),
                        std::to_string(s.lag_epochs),
                        s.lagging ? "lagging" : "live",
                        s.volume_b > 0.0 ? fmt(s.volume_b, 5) : "-"});
  }
  site_table.print(std::cout);
}

void print_json(const disco::collect::Collector& collector, std::size_t top) {
  const auto totals = collector.totals();
  std::ostringstream out;
  out << "{\"reports\":" << collector.reports_ingested()
      << ",\"epochs_finalized\":" << collector.epochs_finalized()
      << ",\"tracked_flows\":" << collector.tracked_flows()
      << ",\"flows_dropped\":" << collector.flows_dropped()
      << ",\"totals\":{\"bytes\":" << totals.bytes
      << ",\"packets\":" << totals.packets
      << ",\"bytes_low\":" << totals.bytes_low
      << ",\"bytes_high\":" << totals.bytes_high
      << ",\"interval_valid\":" << (totals.interval_valid ? "true" : "false")
      << "},\"top\":[";
  bool first = true;
  for (const auto& g : collector.top_k(top)) {
    if (!first) out << ',';
    first = false;
    out << "{\"flow\":\"" << flow_label(g.flow) << "\",\"bytes\":" << g.bytes
        << ",\"bytes_low\":" << g.bytes_low
        << ",\"bytes_high\":" << g.bytes_high
        << ",\"interval_valid\":" << (g.interval_valid ? "true" : "false")
        << ",\"packets\":" << g.packets << ",\"sites\":" << g.sites << "}";
  }
  out << "],\"sites\":[";
  first = true;
  for (const auto& s : collector.sites()) {
    if (!first) out << ',';
    first = false;
    out << "{\"site\":" << s.site_id << ",\"reports\":" << s.reports
        << ",\"duplicates\":" << s.duplicates << ",\"late\":" << s.late
        << ",\"reordered\":" << s.reordered
        << ",\"epoch_gaps\":" << s.epoch_gaps << ",\"legacy\":" << s.legacy
        << ",\"lag_epochs\":" << s.lag_epochs
        << ",\"lagging\":" << (s.lagging ? "true" : "false") << "}";
  }
  out << "]}";
  std::cout << out.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;

  std::vector<std::string> spools;
  int listen_port = -1;
  std::uint64_t expect = 0;
  std::uint64_t wait_ms = 10000;
  std::uint32_t sites = 0;
  std::size_t top = 10;
  std::string modules_selection;
  bool json = false;
  collect::CollectorConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--spool") {
      // Greedy: every following non-flag argument is a spool file.
      while (i + 1 < argc && argv[i + 1][0] != '-') spools.push_back(argv[++i]);
      if (spools.empty()) usage("--spool needs at least one file");
    }
    else if (arg == "--listen") listen_port = std::atoi(value().c_str());
    else if (arg == "--expect") expect = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    else if (arg == "--wait-ms") wait_ms = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    else if (arg == "--sites") sites = static_cast<std::uint32_t>(std::atoll(value().c_str()));
    else if (arg == "--top") top = static_cast<std::size_t>(std::atoll(value().c_str()));
    else if (arg == "--confidence") config.confidence = std::atof(value().c_str());
    else if (arg == "--window") config.liveness_window = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    else if (arg == "--fallback-b") config.fallback_b = std::atof(value().c_str());
    else if (arg == "--modules") modules_selection = value();
    else if (arg == "--json") json = true;
    else usage(("unknown option: " + arg).c_str());
  }
  if (spools.empty() == (listen_port < 0)) {
    usage("exactly one of --spool / --listen is required");
  }

  collect::Collector collector(config);
  for (std::uint32_t site = 0; site < sites; ++site) {
    collector.expect_site(site);
  }
  modules::ModuleHost host("collector_modules");
  if (!modules_selection.empty()) {
    try {
      for (auto& module : modules::make_modules(modules_selection)) {
        host.attach(std::move(module));
      }
    } catch (const std::exception& e) {
      usage(e.what());
    }
    host.subscribe_to(collector);
  }

  if (!spools.empty()) {
    collect::SpoolSource source(spools);
    const auto stats = source.poll(collector);
    collector.finalize_all();
    if (stats.truncated_tails > 0) {
      std::cerr << "warning: " << stats.truncated_tails
                << " spool file(s) end mid-report (torn tail discarded)\n";
    }
    if (stats.unreadable > 0) {
      std::cerr << "warning: " << stats.unreadable
                << " spool file(s) could not be read\n";
    }
  } else {
    try {
      collect::ReportServer server(collector,
                                   static_cast<std::uint16_t>(listen_port));
      std::cerr << "listening on 127.0.0.1:" << server.port() << "\n";
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(wait_ms);
      for (;;) {
        {
          util::MutexLock lock(server.ingest_mutex());
          if (expect > 0 && collector.reports_ingested() >= expect) break;
        }
        if (std::chrono::steady_clock::now() >= deadline) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      server.stop();
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    collector.finalize_all();
  }

  if (json) print_json(collector, top);
  else print_text(collector, top);
  if (host.size() > 0) {
    std::cout << "\n";
    host.export_text(std::cout);
  }
  return 0;
}
