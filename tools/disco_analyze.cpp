// disco_analyze: offline analysis of a stored trace.
//
//   disco_analyze <trace-file> [options]
//
//   trace-file    .dtrc or .pcap (format by extension)
//
//   --bits N           counter budget per flow (default 10)
//   --mode volume|size what to count (default volume)
//   --methods a,b,...  comparison set (default DISCO,DISCO-fixed,SAC)
//   --seed N           RNG seed for the probabilistic methods (default 1)
//   --top K            also print the K heaviest flows by exact volume
//   --ci               print 95% confidence intervals for the top flows'
//                      DISCO estimates (Theorem 2 normal approximation)
//   --metrics          enable runtime telemetry, additionally replay the
//                      trace through a ShardedFlowMonitor, and print the
//                      metric registry as JSON (see docs/telemetry.md)
//   --modules a,b,...  replay the trace through a ShardedFlowMonitor with
//                      the named analysis modules subscribed to rotate()
//                      ("all" selects every built-in; docs/modules.md) and
//                      print each module's report
//   --epochs N         rotations for the --modules replay: the packet
//                      stream is split into N equal measurement intervals
//                      (default 4)
//   --modules-json     emit the module reports as one JSON document
//                      instead of text
//
// Replays the trace against each method and prints the paper's error
// metrics, plus counter-bit accounting -- the offline half of the pipeline.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/disco.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "modules/host.hpp"
#include "stats/experiment.hpp"
#include "stats/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: disco_analyze <trace.dtrc|trace.pcap> [--bits N]"
               " [--mode volume|size] [--methods a,b,...] [--seed N] [--top K]"
               " [--ci] [--metrics] [--modules a,b,...|all] [--epochs N]"
               " [--modules-json]\n";
  std::exit(2);
}

/// A synthetic but deterministic 5-tuple for a dense flow id, for replaying
/// id-keyed traces through the 5-tuple monitor stack.
disco::flowtable::FiveTuple tuple_for_flow(std::uint32_t flow_id) {
  disco::flowtable::FiveTuple t;
  t.src_ip = 0x0a000000u | flow_id;  // 10.x.y.z
  t.dst_ip = 0xc0a80001u;            // 192.168.0.1
  t.src_port = static_cast<std::uint16_t>(1024 + (flow_id & 0x7fff));
  t.dst_port = 443;
  t.protocol = 6;
  return t;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  if (argc < 2) usage();
  const std::string path = argv[1];
  if (path == "--help" || path == "-h") usage();

  int bits = 10;
  stats::CountingMode mode = stats::CountingMode::kVolume;
  std::vector<std::string> methods = {"DISCO", "DISCO-fixed", "SAC"};
  std::uint64_t seed = 1;
  std::size_t top_k = 0;
  bool with_ci = false;
  bool with_metrics = false;
  std::string modules_selection;
  std::size_t module_epochs = 4;
  bool modules_json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc) {
      bits = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "volume") {
        mode = stats::CountingMode::kVolume;
      } else if (m == "size") {
        mode = stats::CountingMode::kSize;
      } else {
        usage("--mode must be volume or size");
      }
    } else if (std::strcmp(argv[i], "--methods") == 0 && i + 1 < argc) {
      methods = split_csv(argv[++i]);
      if (methods.empty()) usage("--methods list empty");
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--ci") == 0) {
      with_ci = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      with_metrics = true;
    } else if (std::strcmp(argv[i], "--modules") == 0 && i + 1 < argc) {
      modules_selection = argv[++i];
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      module_epochs = static_cast<std::size_t>(std::atol(argv[++i]));
      if (module_epochs == 0) usage("--epochs must be >= 1");
    } else if (std::strcmp(argv[i], "--modules-json") == 0) {
      modules_json = true;
    } else {
      usage("unknown option");
    }
  }
  if (with_metrics) telemetry::set_enabled(true);

  try {
    // Load packets and regroup them into flows (arrival order preserved).
    std::vector<trace::PacketRecord> packets;
    if (ends_with(path, ".pcap")) {
      packets = trace::read_pcap_file(path);
    } else {
      packets = trace::read_trace_file(path).packets;
    }
    std::uint32_t max_flow_id = 0;
    for (const auto& p : packets) max_flow_id = std::max(max_flow_id, p.flow_id);
    std::vector<trace::FlowRecord> flows(max_flow_id + 1);
    for (std::uint32_t id = 0; id <= max_flow_id; ++id) flows[id].id = id;
    for (const auto& p : packets) flows[p.flow_id].lengths.push_back(p.length);

    const auto summary = trace::summarize(flows);
    std::cout << "trace: " << packets.size() << " packets, " << summary.flow_count
              << " flow slots, " << summary.total_bytes << " bytes; counting "
              << stats::to_string(mode) << " with " << bits
              << "-bit counters\n\n";

    auto& method_run_ns =
        telemetry::Registry::global().histogram("analyze.method_run_ns");
    stats::TextTable table({"method", "avg R", "R_o(0.95)", "max R",
                            "largest counter bits", "SRAM bits"});
    for (const auto& name : methods) {
      const auto method = stats::make_method(name);
      const telemetry::ScopeTimer timer(method_run_ns);
      const auto r = stats::run_accuracy(*method, flows, mode, bits, seed);
      table.add_row({name, stats::fmt(r.errors.average, 4),
                     stats::fmt(r.errors.optimistic95, 4),
                     stats::fmt(r.errors.maximum, 4),
                     std::to_string(r.max_counter_bits),
                     std::to_string(r.storage_bits)});
    }
    table.print(std::cout);

    if (top_k > 0 || with_ci) {
      if (top_k == 0) top_k = 5;
      auto truths = trace::flow_truths(flows);
      std::partial_sort(truths.begin(),
                        truths.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(top_k, truths.size())),
                        truths.end(),
                        [](const trace::FlowTruth& a, const trace::FlowTruth& b) {
                          return a.bytes > b.bytes;
                        });
      // Re-run DISCO to attach estimates (and intervals) to the top flows.
      const auto disco = stats::make_method("DISCO");
      const auto rd = stats::run_accuracy(*disco, flows, mode, bits, seed);
      const auto params = core::DiscoParams::for_budget(
          std::max<std::uint64_t>(1, stats::max_flow_length(flows, mode)), bits);
      std::cout << "\ntop flows by exact volume:\n";
      for (std::size_t i = 0; i < std::min(top_k, truths.size()); ++i) {
        std::cout << "  flow " << truths[i].id << ": " << truths[i].bytes
                  << " B / " << truths[i].packets << " pkts; DISCO estimate "
                  << stats::fmt(rd.estimates[truths[i].id], 0);
        if (with_ci) {
          // Invert the estimate back to the counter for the interval.
          const auto c = static_cast<std::uint64_t>(
              params.counter_bound(rd.estimates[truths[i].id]) + 0.5);
          const auto ci = params.confidence_interval(c, 0.95);
          std::cout << " (95% CI [" << stats::fmt(ci.low, 0) << ", "
                    << stats::fmt(ci.high, 0) << "])";
        }
        std::cout << '\n';
      }
    }

    if (!modules_selection.empty()) {
      // Replay the trace through the online monitor with the selected
      // analysis modules subscribed, rotating `module_epochs` times so the
      // modules see a stream of measurement intervals (docs/modules.md).
      modules::ModuleHost host;
      for (auto& module : modules::make_modules(modules_selection)) {
        host.attach(std::move(module));
      }
      flowtable::ShardedFlowMonitor monitor(
          {.base = {.max_flows = static_cast<std::size_t>(max_flow_id) + 1,
                    .counter_bits = bits,
                    .seed = seed,
                    .telemetry_prefix = "analyze_modules"},
           .shards = 4});
      host.subscribe_to(monitor);
      const std::size_t per_epoch =
          std::max<std::size_t>(1, packets.size() / module_epochs);
      std::size_t in_epoch = 0;
      for (const auto& p : packets) {
        monitor.ingest(tuple_for_flow(p.flow_id), p.length);
        if (++in_epoch >= per_epoch && host.epochs_dispatched() + 1 < module_epochs) {
          (void)monitor.rotate();
          in_epoch = 0;
        }
      }
      (void)monitor.rotate();  // final interval
      host.flush();
      if (modules_json) {
        std::cout << "\n" << host.export_json() << "\n";
      } else {
        std::cout << "\nmodule reports (" << host.epochs_dispatched()
                  << " epochs):\n";
        host.export_text(std::cout);
      }
    }

    if (with_metrics) {
      // Replay the trace through the online monitor stack so the snapshot
      // carries the operational signals too (per-shard ingest, occupancy,
      // evictions, probe lengths), not just the offline error analysis.
      flowtable::ShardedFlowMonitor monitor(
          {.base = {.max_flows = static_cast<std::size_t>(max_flow_id) + 1,
                    .counter_bits = bits},
           .shards = 4});
      std::uint64_t now_ns = 0;
      for (std::size_t i = 0; i < packets.size(); ++i) {
        const auto& p = packets[i];
        now_ns = p.timestamp_ns != 0 ? p.timestamp_ns
                                     : static_cast<std::uint64_t>(i + 1) * 1000;
        monitor.ingest(tuple_for_flow(p.flow_id), p.length, now_ns);
      }
      monitor.evict_idle(now_ns + 1, 0);  // export everything as evictions
      std::cout << "\ntelemetry snapshot:\n"
                << telemetry::to_json(telemetry::Registry::global().snapshot())
                << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
