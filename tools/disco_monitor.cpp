// disco_monitor: one monitoring site of a distributed deployment.
//
//   disco_monitor --site I --sites N (--spool PATH | --connect HOST:PORT)
//                 [options]
//
//   --site I           this site's id, 0 <= I < N (required)
//   --sites N          fleet size (required)
//   --spool PATH       append DRPT epoch reports to this spool file
//   --connect H:P      stream reports to a collector's ReportServer instead
//   --flows F          flows in the shared synthetic trace (default 600)
//   --alpha A          Zipf skew of the trace (default 1.1)
//   --seed S           trace seed -- every site MUST pass the same value;
//                      the trace is regenerated identically in each process
//                      and site I keeps the packets with arrival index
//                      congruent to I mod N, an ECMP-style disjoint split
//                      (default 1)
//   --epochs E         measurement intervals / rotations (default 3)
//   --bits B           counter bits per flow (default 12)
//   --estimator disco|additive   counter family (default disco)
//   --format V         DRPT wire version to emit, 1..3 (default 3);
//                      < 3 simulates a legacy monitor in a mixed fleet
//   --max-flows M      monitor table capacity (default 4096)
//
// This is the producer half of the multi-process convergence soak suite
// (tests/test_collector_soak.cpp): N of these processes split one
// deterministic Zipf trace, and the collector's merged answer must match
// single-process ground truth within Theorem 2 bounds.  Measurement
// randomness is seeded per site (seed and site id both feed the monitor
// RNG), so sites' estimation errors are independent -- the property the
// collector's variance accounting relies on.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "collect/transport.hpp"
#include "flowtable/monitor.hpp"
#include "flowtable/report_io.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: disco_monitor --site I --sites N"
               " (--spool PATH | --connect HOST:PORT) [--flows F]"
               " [--alpha A] [--seed S] [--epochs E] [--bits B]"
               " [--estimator disco|additive] [--format V] [--max-flows M]\n";
  std::exit(2);
}

/// Same deterministic dense-id-to-5-tuple mapping as disco_analyze, so the
/// collector side can relate merged keys back to trace flow ids.
disco::flowtable::FiveTuple tuple_for_flow(std::uint32_t flow_id) {
  disco::flowtable::FiveTuple t;
  t.src_ip = 0x0a000000u | flow_id;  // 10.x.y.z
  t.dst_ip = 0xc0a80001u;            // 192.168.0.1
  t.src_port = static_cast<std::uint16_t>(1024 + (flow_id & 0x7fff));
  t.dst_port = 443;
  t.protocol = 6;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;

  std::int64_t site = -1, sites = -1;
  std::string spool, connect;
  std::uint32_t flows = 600;
  double alpha = 1.1;
  std::uint64_t seed = 1;
  std::uint32_t epochs = 3;
  int bits = 12;
  bool additive = false;
  std::uint32_t format = flowtable::kReportVersion;
  std::size_t max_flows = 4096;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--site") site = std::atoll(value().c_str());
    else if (arg == "--sites") sites = std::atoll(value().c_str());
    else if (arg == "--spool") spool = value();
    else if (arg == "--connect") connect = value();
    else if (arg == "--flows") flows = static_cast<std::uint32_t>(std::atoll(value().c_str()));
    else if (arg == "--alpha") alpha = std::atof(value().c_str());
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    else if (arg == "--epochs") epochs = static_cast<std::uint32_t>(std::atoll(value().c_str()));
    else if (arg == "--bits") bits = std::atoi(value().c_str());
    else if (arg == "--estimator") {
      const std::string kind = value();
      if (kind == "disco") additive = false;
      else if (kind == "additive") additive = true;
      else usage("unknown estimator (expected disco|additive)");
    }
    else if (arg == "--format") format = static_cast<std::uint32_t>(std::atoll(value().c_str()));
    else if (arg == "--max-flows") max_flows = static_cast<std::size_t>(std::atoll(value().c_str()));
    else usage(("unknown option: " + arg).c_str());
  }
  if (site < 0 || sites < 1 || site >= sites) {
    usage("--site and --sites are required, with 0 <= site < sites");
  }
  if (spool.empty() == connect.empty()) {
    usage("exactly one of --spool / --connect is required");
  }
  if (epochs == 0 || flows == 0) usage("--epochs and --flows must be > 0");
  if (format < 1 || format > flowtable::kReportVersion) {
    usage("--format must be 1..3");
  }

  // Every site regenerates the identical trace from the shared seed...
  util::Rng traffic_rng(seed);
  const auto flow_records =
      trace::zipf_scenario(alpha).make_flows(flows, traffic_rng);
  trace::PacketStream stream(flow_records, 1, 4, seed + 1);
  const std::uint64_t total_packets = stream.total_packets();

  // ...but measures with its own randomness.
  flowtable::FlowMonitor::Config config;
  config.max_flows = max_flows;
  config.counter_bits = bits;
  config.seed = seed * 7919 + static_cast<std::uint64_t>(site) + 1;
  config.estimator = additive ? flowtable::EstimatorKind::AdditiveError
                              : flowtable::EstimatorKind::Disco;
  config.telemetry_prefix = "site_" + std::to_string(site);
  flowtable::FlowMonitor monitor(config);

  std::ofstream spool_out;
  std::unique_ptr<collect::ReportClient> client;
  if (!spool.empty()) {
    spool_out.open(spool, std::ios::binary | std::ios::trunc);
    if (!spool_out) {
      std::cerr << "error: cannot open spool file " << spool << "\n";
      return 1;
    }
  } else {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) usage("--connect expects HOST:PORT");
    try {
      client = std::make_unique<collect::ReportClient>(
          connect.substr(0, colon),
          static_cast<std::uint16_t>(
              std::atoi(connect.c_str() + colon + 1)));
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  const auto site_id = static_cast<std::uint32_t>(site);
  auto ship = [&](const flowtable::FlowMonitor::EpochReport& report) {
    if (client) {
      client->send(report, site_id, format);
    } else {
      flowtable::write_report(spool_out, report, site_id, format);
    }
  };

  // Split the arrival stream into `epochs` equal intervals; this site
  // ingests the packets whose arrival index lands on it mod N.
  const std::uint64_t per_epoch =
      total_packets / epochs > 0 ? total_packets / epochs : 1;
  std::uint64_t index = 0;
  std::uint32_t rotated = 0;
  std::uint64_t ingested = 0;
  while (auto packet = stream.next()) {
    if (index % static_cast<std::uint64_t>(sites) ==
        static_cast<std::uint64_t>(site)) {
      monitor.ingest(tuple_for_flow(packet->flow_id), packet->length);
      ++ingested;
    }
    ++index;
    if (rotated + 1 < epochs && index == per_epoch * (rotated + 1)) {
      ship(monitor.rotate());
      ++rotated;
    }
  }
  ship(monitor.rotate());  // final epoch: remainder of the trace
  ++rotated;

  std::cout << "site " << site << "/" << sites << ": ingested " << ingested
            << " of " << total_packets << " packets, shipped " << rotated
            << " epoch reports (DRPT v" << format << ")\n";
  return 0;
}
