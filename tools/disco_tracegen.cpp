// disco_tracegen: generate synthetic traffic traces to a file.
//
//   disco_tracegen <scenario> <flows> <output-file> [options]
//
//   scenario      scenario1 | scenario2 | scenario3 | real | 8020
//   flows         number of flows to generate
//   output-file   extension selects the format: .dtrc (binary), .csv, .pcap
//
//   --seed N      RNG seed (default 1)
//   --burst L:H   flow burst length range in the arrival stream (default 1:1)
//
// Examples:
//   disco_tracegen real 10000 trace.dtrc --seed 7
//   disco_tracegen scenario2 500 s2.pcap --burst 1:8
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/pcap.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: disco_tracegen <scenario> <flows> <output-file>"
               " [--seed N] [--burst L:H]\n"
               "  scenario: scenario1 | scenario2 | scenario3 | real | 8020\n"
               "  output formats by extension: .dtrc | .csv | .pcap\n";
  std::exit(2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disco;
  if (argc < 4) usage();
  const std::string scenario_name = argv[1];
  if (scenario_name == "--help" || scenario_name == "-h") usage();
  const long flow_arg = std::atol(argv[2]);
  const std::string output = argv[3];
  if (flow_arg < 1) usage("flows must be positive");
  const auto flow_count = static_cast<std::uint32_t>(flow_arg);

  std::uint64_t seed = 1;
  std::uint32_t burst_lo = 1;
  std::uint32_t burst_hi = 1;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--burst") == 0 && i + 1 < argc) {
      const std::string range = argv[++i];
      const auto colon = range.find(':');
      if (colon == std::string::npos) usage("--burst expects L:H");
      burst_lo = static_cast<std::uint32_t>(std::atoi(range.substr(0, colon).c_str()));
      burst_hi = static_cast<std::uint32_t>(std::atoi(range.substr(colon + 1).c_str()));
      if (burst_lo < 1 || burst_hi < burst_lo) usage("--burst range invalid");
    } else {
      usage("unknown option");
    }
  }

  util::Rng rng(seed);
  std::vector<trace::FlowRecord> flows;
  try {
    if (scenario_name == "scenario1") {
      flows = trace::scenario1().make_flows(flow_count, rng);
    } else if (scenario_name == "scenario2") {
      flows = trace::scenario2().make_flows(flow_count, rng);
    } else if (scenario_name == "scenario3") {
      flows = trace::scenario3().make_flows(flow_count, rng);
    } else if (scenario_name == "real") {
      flows = trace::real_trace_model().make_flows(flow_count, rng);
    } else if (scenario_name == "8020") {
      flows = trace::make_8020_flows(flow_count, 400.0, 64, 1024, rng);
    } else {
      usage("unknown scenario");
    }

    const auto summary = trace::summarize(flows);
    trace::PacketStream stream(std::move(flows), burst_lo, burst_hi, seed + 1);
    const auto packets = stream.drain();

    if (ends_with(output, ".dtrc")) {
      trace::write_trace_file(output, packets, flow_count);
    } else if (ends_with(output, ".csv")) {
      std::ofstream out(output);
      if (!out) throw std::runtime_error("cannot open " + output);
      trace::write_trace_csv(out, packets);
    } else if (ends_with(output, ".pcap")) {
      trace::write_pcap_file(output, packets);
    } else {
      usage("output extension must be .dtrc, .csv, or .pcap");
    }

    std::cout << "wrote " << packets.size() << " packets / " << summary.flow_count
              << " flows (" << summary.total_bytes << " bytes, mean flow "
              << static_cast<std::uint64_t>(summary.mean_bytes_per_flow)
              << " B) to " << output << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
