#!/usr/bin/env python3
"""lint_docs: keep the repo's documentation honest.

Prose rots faster than code: a renamed file, a dropped CLI flag, or a
machine-specific path silently strands every doc that mentions it.  This
linter walks the repo's markdown and flags three classes of rot:

  dead-link        a relative markdown link whose target does not exist
  stale-path       a repo-relative path reference (src/..., docs/..., ...)
                   that names a nonexistent file or directory, or an
                   absolute machine-local path (/root/..., /opt/...) that
                   has no business in committed docs
  stale-cli-flag   a `--flag` shown next to one of this repo's binaries
                   that the binary's source no longer mentions

CLI reference sections usually list one flag per line with no binary name
in sight, which the stale-cli-flag rule cannot attribute.  Open a flag
context for such a block with an HTML-comment annotation:

    <!-- docs-lint: flags(disco_collect) -->
    | `--spool FILE...` | drain reports from spool files |

Every flag on the following lines is checked against that binary's source
until the next markdown heading, a `docs-lint: end-flags` annotation, or
another flags(...) annotation.  Naming a binary the repo does not build is
itself a finding -- annotations must not rot either.

Scanned set: every *.md at the repo root plus docs/**/*.md, minus generated
inputs and logs (ISSUE.md, PAPER.md, PAPERS.md, SNIPPETS.md, CHANGES.md).

Suppression: add `docs-lint: allow(<rule>)` (inside an HTML comment) on the
offending line, with a reason:

    see [old report](gone.md) <!-- docs-lint: allow(dead-link) kept for history -->

Usage:
    python3 tools/lint_docs.py [repo_root]

Exit code 0 when clean, 1 when any finding, 2 on usage error.  Findings are
printed one per line as `path:line: [rule] message` (the same shape as
tools/lint_disco.py, so CI logs read uniformly).  Registered in ctest as
lint_docs_src / lint_docs_selftest and in the static-analysis CI job.
"""

from __future__ import annotations

import glob
import os
import re
import sys

EXCLUDED_DOCS = {"ISSUE.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md",
                 "CHANGES.md"}

# [text](target) -- also matches images; anchors/URLs filtered later.
MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Repo-relative path-like tokens in prose or code spans.  Requires a known
# top-level directory prefix so ordinary words never match.
PATH_TOKEN_RE = re.compile(
    r"(?<![\w/.])((?:src|tools|tests|docs|bench|examples|\.github)"
    r"/[A-Za-z0-9_./\-]+)")

# Machine-local absolute paths that make docs unreproducible.  /tmp and
# /dev are legitimate in examples; home directories and image mounts are not.
ABS_PATH_RE = re.compile(r"(?<![\w.])(/(?:root|home|opt)/[A-Za-z0-9_./\-]+)")

FLAG_RE = re.compile(r"(?<![\w\-])(--[a-z][a-z0-9\-_]+)")

# Flags that belong to external tools often shown on the same command line
# as ours (cmake/ctest/google-benchmark), never to this repo's binaries.
EXTERNAL_FLAGS = {
    "--build", "--parallel", "--target", "--config", "--preset",
    "--output-on-failure", "--rerun-failed", "--test-dir", "--help",
    "--version", "--benchmark_format", "--benchmark_min_time",
    "--benchmark_filter",
}

SUPPRESS_RE = re.compile(r"docs-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

# Flag-context annotations for CLI reference blocks (see module docstring).
FLAGS_CTX_RE = re.compile(r"docs-lint:\s*flags\(([A-Za-z0-9_.\-]+)\)")
FLAGS_END_RE = re.compile(r"docs-lint:\s*end-flags")
HEADING_RE = re.compile(r"^\s{0,3}#{1,6}\s")


def find_docs(root: str) -> list[str]:
    docs = []
    for name in sorted(os.listdir(root)):
        if name.endswith(".md") and name not in EXCLUDED_DOCS:
            path = os.path.join(root, name)
            if os.path.isfile(path):
                docs.append(path)
    docs.extend(sorted(glob.glob(os.path.join(root, "docs", "**", "*.md"),
                                 recursive=True)))
    return docs


def known_binaries(root: str) -> dict[str, str]:
    """Maps binary/script base name -> source path, for the CLI-flag rule."""
    out = {}
    for pattern in ("tools/*.cpp", "bench/*.cpp", "examples/*.cpp"):
        for source in glob.glob(os.path.join(root, pattern)):
            out[os.path.splitext(os.path.basename(source))[0]] = source
    for source in glob.glob(os.path.join(root, "tools", "*.py")):
        out[os.path.basename(source)] = source
    return out


def suppressed_rules(line: str) -> set[str]:
    rules = set()
    for match in SUPPRESS_RE.finditer(line):
        for rule in match.group(1).split(","):
            rules.add(rule.strip())
    return rules


class Linter:
    def __init__(self, root: str):
        self.root = root
        self.binaries = known_binaries(root)
        self.source_cache: dict[str, str] = {}
        self.findings: list[str] = []

    def source_text(self, path: str) -> str:
        # Flags are often parsed by a shared helper next to the binary
        # (bench/bench_common.hpp's --telemetry), so sibling *common* files
        # count as part of the binary's source.
        if path not in self.source_cache:
            chunks = []
            for part in [path] + glob.glob(
                    os.path.join(os.path.dirname(path), "*common*")):
                with open(part, encoding="utf-8", errors="replace") as f:
                    chunks.append(f.read())
            self.source_cache[path] = "\n".join(chunks)
        return self.source_cache[path]

    def report(self, path: str, lineno: int, rule: str, message: str):
        rel = os.path.relpath(path, self.root)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: str):
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
        doc_dir = os.path.dirname(path)
        context_binary = None
        for lineno, line in enumerate(lines, start=1):
            ctx = FLAGS_CTX_RE.search(line)
            if ctx:
                context_binary = ctx.group(1)
                if context_binary not in self.binaries:
                    self.report(path, lineno, "stale-cli-flag",
                                f"flags({context_binary}) names a binary "
                                "the repo does not build")
                    context_binary = None
                continue
            if FLAGS_END_RE.search(line) or HEADING_RE.match(line):
                context_binary = None
            allowed = suppressed_rules(line)
            if "dead-link" not in allowed:
                self.check_links(path, doc_dir, lineno, line)
            if "stale-path" not in allowed:
                self.check_paths(path, lineno, line)
            if "stale-cli-flag" not in allowed:
                self.check_flags(path, lineno, line, context_binary)

    def check_links(self, path: str, doc_dir: str, lineno: int, line: str):
        for match in MD_LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (os.path.join(self.root, target[1:])
                        if target.startswith("/")
                        else os.path.join(doc_dir, target))
            if not os.path.exists(resolved):
                self.report(path, lineno, "dead-link",
                            f"link target '{match.group(1)}' does not exist")

    def check_paths(self, path: str, lineno: int, line: str):
        # Markdown link targets are the dead-link rule's job; blank them so
        # a broken link reports once, not twice.
        line = MD_LINK_RE.sub(lambda m: "[]()", line)
        for match in PATH_TOKEN_RE.finditer(line):
            token = match.group(1).rstrip(".,;:")
            # Globs, placeholders, and template paths are descriptive, not
            # references ("docs/*.md", "src/<area>/...").
            if any(c in token for c in "*<>{}$"):
                continue
            resolved = os.path.join(self.root, token)
            # Extensionless references name a source pair ("src/core/disco"
            # for disco.hpp/.cpp) or a built binary ("examples/quickstart");
            # accept them when a file with that stem exists.
            if not os.path.exists(resolved) and not glob.glob(resolved + "*"):
                self.report(path, lineno, "stale-path",
                            f"'{token}' does not exist in the repo")
        for match in ABS_PATH_RE.finditer(line):
            self.report(path, lineno, "stale-path",
                        f"machine-local absolute path '{match.group(1)}'")

    def check_flags(self, path: str, lineno: int, line: str,
                    context_binary: str | None = None):
        mentioned = [name for name in self.binaries if name in line]
        if not mentioned:
            if context_binary is None:
                return
            mentioned = [context_binary]
        for match in FLAG_RE.finditer(line):
            flag = match.group(1)
            if flag in EXTERNAL_FLAGS:
                continue
            if any(flag in self.source_text(self.binaries[name])
                   for name in mentioned):
                continue
            self.report(path, lineno, "stale-cli-flag",
                        f"flag '{flag}' not found in source of "
                        f"{'/'.join(sorted(mentioned))}")


def main(argv: list[str]) -> int:
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = os.path.abspath(argv[1]) if len(argv) == 2 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"lint_docs: no such directory: {root}", file=sys.stderr)
        return 2
    linter = Linter(root)
    docs = find_docs(root)
    for doc in docs:
        linter.lint_file(doc)
    for finding in linter.findings:
        print(finding)
    print(f"lint_docs: {len(linter.findings)} finding(s) in {len(docs)} "
          f"file(s)", file=sys.stderr)
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
