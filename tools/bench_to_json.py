#!/usr/bin/env python3
"""Run the performance benches and record a normalized BENCH_<n>.json.

Runs bench_micro_update (google-benchmark JSON mode), bench_pipeline and
bench_ablation_pressure (their own --json modes), normalizes all into one
document, and writes it to
BENCH_<n>.json at the repo root, where <n> auto-increments past existing
files.  Committing these snapshots gives the repo a benchmark trajectory:
each PR's perf claims stay reproducible and comparable.

Usage:
    python3 tools/bench_to_json.py [--build-dir build] [--scale 0.3]
        [--min-time 0.2] [--out PATH] [--skip-pipeline]

Stdlib only; the benches must already be built (Release recommended):
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_micro(build_dir: str, min_time: float) -> dict:
    """bench_micro_update via google-benchmark's native JSON reporter."""
    binary = os.path.join(build_dir, "bench", "bench_micro_update")
    # NOTE: --benchmark_min_time takes a plain double (seconds); the
    # suffixed "0.2s" form is rejected by the benchmark library packaged
    # on this image.
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    print("+", " ".join(cmd), file=sys.stderr)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    doc = json.loads(out.stdout)
    benchmarks = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        entry = {
            "time_ns": b.get("real_time"),
            "cpu_ns": b.get("cpu_time"),
            "iterations": b.get("iterations"),
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        benchmarks[b["name"]] = entry
    result = {"benchmarks": benchmarks}
    ctx = doc.get("context", {})
    result["context"] = {
        k: ctx[k]
        for k in ("num_cpus", "mhz_per_cpu", "library_build_type")
        if k in ctx
    }
    # Headline derived metric: the decision-table speedup this repo's fast
    # path claims (see src/core/decision_table.hpp).
    double_ns = benchmarks.get("BM_DiscoDouble", {}).get("cpu_ns")
    table_ns = benchmarks.get("BM_DiscoTable", {}).get("cpu_ns")
    if double_ns and table_ns:
        result["disco_table_speedup"] = round(double_ns / table_ns, 2)
    # Derived metric: cost of the model-check atomics shim in a normal
    # build (util/atomic.hpp; docs/static-analysis.md "Model checking").
    # SpscRing-through-the-shim over the identical protocol on raw
    # std::atomic -- must hover at 1.0, or the shim stopped being free.
    shim_ns = benchmarks.get("BM_SpscRingShim", {}).get("cpu_ns")
    raw_ns = benchmarks.get("BM_SpscRingRaw", {}).get("cpu_ns")
    if shim_ns and raw_ns:
        result["shim_overhead"] = round(shim_ns / raw_ns, 3)
    return result


def run_pipeline(build_dir: str, scale: float) -> dict:
    """bench_pipeline via its --json=<path> reporter."""
    binary = os.path.join(build_dir, "bench", "bench_pipeline")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        env = dict(os.environ, DISCO_BENCH_SCALE=str(scale))
        cmd = [binary, f"--json={tmp_path}"]
        print("+", " ".join(cmd), f"(DISCO_BENCH_SCALE={scale})",
              file=sys.stderr)
        subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
        with open(tmp_path) as f:
            return json.load(f)
    finally:
        os.unlink(tmp_path)


def run_pressure(build_dir: str, scale: float) -> dict:
    """bench_ablation_pressure via its --json=<path> reporter."""
    binary = os.path.join(build_dir, "bench", "bench_ablation_pressure")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        env = dict(os.environ, DISCO_BENCH_SCALE=str(scale))
        cmd = [binary, f"--json={tmp_path}"]
        print("+", " ".join(cmd), f"(DISCO_BENCH_SCALE={scale})",
              file=sys.stderr)
        subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
        with open(tmp_path) as f:
            return json.load(f)
    finally:
        os.unlink(tmp_path)


def run_collector(build_dir: str, scale: float) -> dict:
    """bench_collector via its --json=<path> reporter."""
    binary = os.path.join(build_dir, "bench", "bench_collector")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        env = dict(os.environ, DISCO_BENCH_SCALE=str(scale))
        cmd = [binary, f"--json={tmp_path}"]
        print("+", " ".join(cmd), f"(DISCO_BENCH_SCALE={scale})",
              file=sys.stderr)
        subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
        with open(tmp_path) as f:
            return json.load(f)
    finally:
        os.unlink(tmp_path)


def detect_cpu_count() -> int:
    """CPUs actually usable by this process, not the machine's socket count.

    os.cpu_count() reports every online CPU even when the process is pinned
    to a subset (cgroups, taskset, CI runners), which silently inflated the
    recorded host context.  The affinity mask is what the benches really
    ran on.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def detect_simd_isa() -> str:
    """Tag-probe ISA the benches ran with (matches tagprobe::isa_name()).

    The probe path is pinned at SSE2 by design -- a group is 16 tags, one
    16-byte load (see tag_probe.hpp) -- so the only question is whether the
    host has it at all.  Wider ISAs in cpuinfo are deliberately not recorded
    here; they would misstate what the probe actually executed.
    """
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags"):
                    return "sse2" if "sse2" in line.split(":", 1)[1].split() \
                        else "scalar"
    except OSError:
        pass
    return "unknown"


def detect_hugepages() -> str:
    """Transparent-hugepage mode ('always'/'madvise'/'never'/'unavailable').

    'madvise' or 'always' means the monitors' hugepages=true knob can take
    effect; recorded so hugepage ablation rows are interpretable later.
    """
    path = "/sys/kernel/mm/transparent_hugepage/enabled"
    try:
        with open(path) as f:
            m = re.search(r"\[(\w+)\]", f.read())
            return m.group(1) if m else "unknown"
    except OSError:
        return "unavailable"


def next_output_path() -> str:
    taken = set()
    for name in os.listdir(REPO_ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if m:
            taken.add(int(m.group(1)))
    n = 0
    while n in taken:
        n += 1
    return os.path.join(REPO_ROOT, f"BENCH_{n}.json")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--scale", type=float, default=0.3,
                        help="DISCO_BENCH_SCALE for bench_pipeline")
    parser.add_argument("--min-time", type=float, default=0.2,
                        help="google-benchmark min time per bench, seconds")
    parser.add_argument("--out", default=None,
                        help="output path (default: next free BENCH_<n>.json)")
    parser.add_argument("--skip-pipeline", action="store_true",
                        help="only run the micro bench (quick smoke)")
    parser.add_argument("--skip-pressure", action="store_true",
                        help="skip the pressure-policy ablation bench")
    parser.add_argument("--skip-collector", action="store_true",
                        help="skip the collector merge-throughput bench")
    args = parser.parse_args()

    doc = {
        "schema": "disco-bench-v1",
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": detect_cpu_count(),
            "simd_isa": detect_simd_isa(),
            "transparent_hugepages": detect_hugepages(),
        },
        "micro_update": run_micro(args.build_dir, args.min_time),
    }
    if not args.skip_pipeline:
        doc["pipeline"] = run_pipeline(args.build_dir, args.scale)
        # Headline derived metric: worst-case ingest overhead of running the
        # full analysis-module set on every rotation (see docs/modules.md and
        # the module-overhead section in EXPERIMENTS.md).
        overheads = [row["overhead"]
                     for row in doc["pipeline"].get("modules", [])
                     if "overhead" in row]
        if overheads:
            doc["module_overhead_max"] = round(max(overheads), 4)
    if not args.skip_pressure:
        doc["pressure_ablation"] = run_pressure(args.build_dir, args.scale)
    if not args.skip_collector:
        doc["collector"] = run_collector(args.build_dir, args.scale)
        # Headline derived metric: fusion-heavy merge throughput at the
        # documented CI fleet size (see docs/collector.md).
        for row in doc["collector"].get("merge", []):
            if row.get("sites") == 4:
                doc["collector_merge_mrecs_4_sites"] = round(
                    row["mrecs_per_s"], 2)

    out_path = args.out or next_output_path()
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
